/// Wireless sensor network scenario — the beeping model's original
/// motivation (Cornejo & Kuhn). Sensors scattered in the unit square form a
/// unit-disk graph; an MIS is the classic clusterhead election. Radios die
/// and reboot with scrambled memory (transient faults); the self-stabilizing
/// algorithm heals the clusterhead set without any coordinator.

#include <cstdio>

#include "src/beep/fault.hpp"
#include "src/beep/network.hpp"
#include "src/core/lmax.hpp"
#include "src/core/selfstab_mis.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"
#include "src/mis/verifier.hpp"

namespace {

void report(const char* phase, const beepmis::core::SelfStabMis& algo,
            unsigned long long round) {
  const auto members = algo.mis_members();
  const auto stable = algo.stable_vertices();
  std::size_t stable_count = 0;
  for (bool s : stable) stable_count += s;
  std::printf("%-28s round %6llu: clusterheads=%3zu stable=%3zu/%zu valid=%s\n",
              phase, round, beepmis::mis::member_count(members), stable_count,
              stable.size(),
              beepmis::mis::is_mis(algo.graph(), members) ? "yes" : "no ");
}

}  // namespace

int main() {
  using namespace beepmis;

  // 300 sensors, radio range tuned for average ~10 neighbors.
  support::Rng graph_rng(2024);
  const graph::Graph g = graph::make_random_geometric(300, 0.103, graph_rng);
  const auto ds = graph::degree_stats(g);
  std::printf("deployed %zu sensors, %zu links, degree avg %.1f max %zu\n\n",
              g.vertex_count(), g.edge_count(), ds.mean, ds.max);

  // Each sensor only knows its own neighbor count (Theorem 2.2 regime) —
  // realistic for radios that can count link-layer associations.
  auto algo = std::make_unique<core::SelfStabMis>(
      g, core::lmax_own_degree(g), core::Knowledge::OwnDegree);
  auto* a = algo.get();
  beep::Simulation sim(g, std::move(algo), /*seed=*/17);

  auto stabilize = [&](const char* phase) {
    const auto start = sim.round();
    sim.run_until(
        [&](const beep::Simulation&) { return a->is_stabilized(); }, 200000);
    std::printf("%-28s converged in %llu rounds\n", phase,
                static_cast<unsigned long long>(sim.round() - start));
    report(phase, *a, sim.round());
  };

  // Cold start from factory-random memory.
  support::Rng chaos(5);
  beep::FaultInjector::corrupt_all(sim, chaos);
  stabilize("cold start");

  // A localized lightning strike scrambles 30 sensors.
  std::printf("\n** transient fault: 30 sensors rebooted **\n");
  beep::FaultInjector::corrupt_random(sim, 30, chaos);
  report("after fault", *a, sim.round());
  stabilize("self-healing");

  // A catastrophic event scrambles everything.
  std::printf("\n** transient fault: ALL sensors rebooted **\n");
  beep::FaultInjector::corrupt_all(sim, chaos);
  report("after fault", *a, sim.round());
  stabilize("full recovery");

  // Energy accounting: beeps are the dominant radio cost.
  std::printf("\ntotal beeps emitted: %llu (%.1f per sensor)\n",
              static_cast<unsigned long long>(sim.total_beeps(0)),
              static_cast<double>(sim.total_beeps(0)) /
                  static_cast<double>(g.vertex_count()));
  return 0;
}
