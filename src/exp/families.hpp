#pragma once

#include <string>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/support/rng.hpp"

namespace beepmis::exp {

/// Named graph families the experiments sweep over, parameterized only by n
/// so scaling plots are one-dimensional.
enum class Family {
  ErdosRenyiAvg8,   ///< G(n, p) with expected average degree 8
  Random4Regular,   ///< random 4-regular
  Torus,            ///< ~sqrt(n) × sqrt(n) torus (constant degree 4)
  BarabasiAlbert3,  ///< preferential attachment, m = 3 (power-law degrees)
  GeometricAvg8,    ///< random unit-disk graph with expected avg degree 8
  RandomTree,       ///< random recursive tree
  Cycle,
  Star,             ///< max-degree pathology: Δ = n−1
};

std::string family_name(Family f);

/// Families used by the headline scaling experiments (excludes the
/// pathological Cycle/Star, which appear in targeted tests).
const std::vector<Family>& scaling_families();

/// Builds an n-vertex (or as close as the family allows, e.g. square torus)
/// instance. Randomized families draw from `rng`.
graph::Graph make_family(Family f, std::size_t n, support::Rng& rng);

}  // namespace beepmis::exp
