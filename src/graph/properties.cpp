#include "src/graph/properties.hpp"

#include <algorithm>
#include <queue>

#include "src/graph/packed.hpp"
#include "src/support/check.hpp"

namespace beepmis::graph {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const std::size_t n = g.vertex_count();
  if (n == 0) return s;
  s.min = g.degree(0);
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    s.mean += static_cast<double>(d);
    if (d == 0) ++s.isolated;
  }
  s.mean /= static_cast<double>(n);
  return s;
}

std::vector<std::size_t> two_hop_max_degree(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<std::size_t> d2(n);
  for (VertexId v = 0; v < n; ++v) {
    std::size_t m = g.degree(v);
    for (VertexId u : g.neighbors(v)) m = std::max(m, g.degree(u));
    d2[v] = m;
  }
  return d2;
}

namespace {

/// BFS from `src`, writing hop distances into `dist` (SIZE_MAX = unreached).
/// Returns the number of reached vertices.
std::size_t bfs(const Graph& g, VertexId src, std::vector<std::size_t>& dist) {
  dist.assign(g.vertex_count(), static_cast<std::size_t>(-1));
  std::queue<VertexId> q;
  dist[src] = 0;
  q.push(src);
  std::size_t reached = 1;
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (VertexId u : g.neighbors(v)) {
      if (dist[u] == static_cast<std::size_t>(-1)) {
        dist[u] = dist[v] + 1;
        q.push(u);
        ++reached;
      }
    }
  }
  return reached;
}

}  // namespace

std::size_t connected_component_count(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> dist;
  std::size_t components = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (seen[v]) continue;
    ++components;
    bfs(g, v, dist);
    for (VertexId u = 0; u < n; ++u)
      if (dist[u] != static_cast<std::size_t>(-1)) seen[u] = true;
  }
  return components;
}

bool is_connected(const Graph& g) {
  if (g.vertex_count() <= 1) return true;
  std::vector<std::size_t> dist;
  return bfs(g, 0, dist) == g.vertex_count();
}

bool is_regular(const Graph& g, std::size_t d) {
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    if (g.degree(v) != d) return false;
  return true;
}

bool is_triangle_free(const Graph& g) {
  // One PackedGraph build (O(n + m)) turns the inner closing-edge probe —
  // executed O(Σ deg²) times — into a bitset-row bit test or a word-indexed
  // block search instead of Graph::has_edge's per-id binary search.
  const PackedGraph packed(g);
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    for (VertexId u : g.neighbors(v)) {
      if (u < v) continue;
      for (VertexId w : g.neighbors(u))
        if (w > u && packed.has_edge(v, w)) return false;
    }
  return true;
}

std::vector<std::size_t> bfs_distances(const Graph& g, VertexId src) {
  std::vector<std::size_t> dist;
  bfs(g, src, dist);
  return dist;
}

Graph graph_power(const Graph& g, std::size_t k) {
  BEEPMIS_CHECK(k >= 1, "graph power needs k >= 1");
  const std::size_t n = g.vertex_count();
  GraphBuilder b(n, g.name() + "^" + std::to_string(k));
  std::vector<std::size_t> dist;
  for (VertexId v = 0; v < n; ++v) {
    bfs(g, v, dist);
    for (VertexId u = v + 1; u < n; ++u)
      if (dist[u] != static_cast<std::size_t>(-1) && dist[u] <= k)
        b.add_edge(v, u);
  }
  return std::move(b).build();
}

std::vector<std::pair<VertexId, VertexId>> edge_list(const Graph& g) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(g.edge_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    for (VertexId u : g.neighbors(v))
      if (v < u) edges.emplace_back(v, u);
  return edges;
}

Graph line_graph(const Graph& g) {
  const auto edges = edge_list(g);
  GraphBuilder b(edges.size(), "L(" + g.name() + ")");
  // Group edge ids by endpoint; edges sharing an endpoint form a clique.
  std::vector<std::vector<VertexId>> incident(g.vertex_count());
  for (VertexId e = 0; e < edges.size(); ++e) {
    incident[edges[e].first].push_back(e);
    incident[edges[e].second].push_back(e);
  }
  for (const auto& bucket : incident)
    for (std::size_t i = 0; i < bucket.size(); ++i)
      for (std::size_t j = i + 1; j < bucket.size(); ++j)
        b.add_edge(bucket[i], bucket[j]);
  return std::move(b).build();
}

std::size_t diameter(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n <= 1) return 0;
  std::size_t diam = 0;
  std::vector<std::size_t> dist;
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t reached = bfs(g, v, dist);
    BEEPMIS_CHECK(reached == n, "diameter of a disconnected graph");
    for (std::size_t d : dist) diam = std::max(diam, d);
  }
  return diam;
}

}  // namespace beepmis::graph
