#include "src/baselines/afek_noknow.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/beep/network.hpp"
#include "src/graph/generators.hpp"
#include "src/mis/verifier.hpp"

namespace beepmis::baselines {
namespace {

TEST(AfekNoKnow, SlotPositionTriangularStructure) {
  using SP = AfekNoKnowledgeMis::SlotPosition;
  // Phase 1 has 1 slot (rounds 0-1), phase 2 has 2 slots (rounds 2-5), ...
  const SP p0 = AfekNoKnowledgeMis::slot_position(0);
  EXPECT_EQ(p0.phase, 1u);
  EXPECT_EQ(p0.slot, 0u);
  EXPECT_TRUE(p0.compete_round);
  const SP p1 = AfekNoKnowledgeMis::slot_position(1);
  EXPECT_EQ(p1.phase, 1u);
  EXPECT_FALSE(p1.compete_round);
  const SP p2 = AfekNoKnowledgeMis::slot_position(2);
  EXPECT_EQ(p2.phase, 2u);
  EXPECT_EQ(p2.slot, 0u);
  const SP p5 = AfekNoKnowledgeMis::slot_position(5);
  EXPECT_EQ(p5.phase, 2u);
  EXPECT_EQ(p5.slot, 1u);
  const SP p6 = AfekNoKnowledgeMis::slot_position(6);
  EXPECT_EQ(p6.phase, 3u);
  EXPECT_EQ(p6.slot, 0u);
}

TEST(AfekNoKnow, SlotPositionIsMonotoneAndContiguous) {
  auto prev = AfekNoKnowledgeMis::slot_position(0);
  for (beep::Round r = 1; r < 20000; ++r) {
    const auto cur = AfekNoKnowledgeMis::slot_position(r);
    EXPECT_GE(cur.phase, prev.phase);
    if (cur.phase == prev.phase) {
      EXPECT_GE(cur.slot, prev.slot);
    }
    EXPECT_LT(cur.slot, cur.phase);  // slot index bounded by phase length
    prev = cur;
  }
}

TEST(AfekNoKnow, ConvergesToValidMisWithoutAnyKnowledge) {
  support::Rng grng(3);
  const auto graphs = {
      graph::make_path(40),   graph::make_cycle(41),
      graph::make_star(40),   graph::make_complete(20),
      graph::make_erdos_renyi(80, 0.08, grng),
      graph::make_barabasi_albert(80, 3, grng),
  };
  for (const auto& g : graphs) {
    auto algo = std::make_unique<AfekNoKnowledgeMis>(g);
    auto* a = algo.get();
    beep::Simulation sim(g, std::move(algo), g.vertex_count() + 5);
    sim.run_until(
        [&](const beep::Simulation&) { return a->terminated(); }, 50000);
    ASSERT_TRUE(a->terminated()) << g.name();
    EXPECT_TRUE(mis::is_mis(g, a->mis_members())) << g.name();
  }
}

TEST(AfekNoKnow, RoundCountIsPolylogOnRandomGraphs) {
  support::Rng grng(4);
  const auto g = graph::make_erdos_renyi_avg_degree(2048, 8.0, grng);
  auto algo = std::make_unique<AfekNoKnowledgeMis>(g);
  auto* a = algo.get();
  beep::Simulation sim(g, std::move(algo), 5);
  sim.run_until([&](const beep::Simulation&) { return a->terminated(); },
                100000);
  ASSERT_TRUE(a->terminated());
  // O(log^2 n): for n=2048, log2 = 11, so ~(11^2)·2 slots·2 ≈ 500; allow 4x.
  EXPECT_LT(sim.round(), 2000u);
}

TEST(AfekNoKnow, SlowerThanJsxButNeedsNothing) {
  // Positioning sanity: JSX needs no knowledge either but relies on the
  // clean p=1/2 start; the Afek ramp starts each phase from scratch, so it
  // should take visibly more rounds on the same instance.
  support::Rng grng(5);
  const auto g = graph::make_erdos_renyi_avg_degree(512, 8.0, grng);
  auto algo = std::make_unique<AfekNoKnowledgeMis>(g);
  auto* a = algo.get();
  beep::Simulation sim(g, std::move(algo), 9);
  sim.run_until([&](const beep::Simulation&) { return a->terminated(); },
                100000);
  ASSERT_TRUE(a->terminated());
  EXPECT_GT(sim.round(), 40u);  // JSX finishes ~25-35 rounds here
}

}  // namespace
}  // namespace beepmis::baselines
