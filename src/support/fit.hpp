#pragma once

#include <span>
#include <string>
#include <vector>

namespace beepmis::support {

/// Result of an ordinary least-squares fit y ≈ a + b·f(x).
struct FitResult {
  double intercept = 0.0;  ///< a
  double slope = 0.0;      ///< b
  double r2 = 0.0;         ///< coefficient of determination
  double rmse = 0.0;       ///< root-mean-square residual
};

/// OLS fit of y against precomputed regressors f(x). xs/ys must have equal
/// size >= 2 and xs must not be constant.
FitResult linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Growth models the scaling experiments compare. The theorems predict which
/// model explains T(n): Thm 2.1 / Cor 2.3 → LogN, Thm 2.2 → LogNLogLogN.
enum class GrowthModel { LogN, LogNLogLogN, Linear, Sqrt };

std::string growth_model_name(GrowthModel m);

/// Evaluate the model regressor at n (natural logs; n must be >= 3 for
/// LogNLogLogN so log log n > 0).
double growth_regressor(GrowthModel m, double n);

/// Fit T(n) data against a growth model: regresses ys on growth_regressor(ns).
FitResult fit_growth(GrowthModel m, std::span<const double> ns,
                     std::span<const double> ys);

/// Fits all models and returns them ordered best-R² first, as
/// (model, fit) pairs. Used by benches to report which asymptotic shape the
/// measurements actually follow.
std::vector<std::pair<GrowthModel, FitResult>> rank_growth_models(
    std::span<const double> ns, std::span<const double> ys);

}  // namespace beepmis::support
