#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/beep/network.hpp"
#include "src/graph/graph.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/sink.hpp"
#include "src/support/rng.hpp"

namespace beepmis::obs {
class RecoveryTracker;  // see obs/recovery.hpp
}

namespace beepmis::core {

/// Which of the paper's three algorithm variants to run. Lives in core (the
/// engines dispatch on it); exp re-exports it as exp::Variant.
enum class Variant {
  GlobalDelta,  ///< Algorithm 1 + Thm 2.1 lmax policy
  OwnDegree,    ///< Algorithm 1 + Thm 2.2 lmax policy
  TwoChannel,   ///< Algorithm 2 + Cor 2.3 lmax policy
};

std::string variant_name(Variant v);

/// Executor selection for make_engine. Fast and Reference are proven
/// coin-for-coin identical under the same seed (test_fast_engine.cpp,
/// test_engine.cpp), so Auto always picks the fast path; Reference exists
/// for cross-checking and for the equivalence tests themselves.
enum class EngineKind {
  Auto,       ///< let the factory choose (currently: always Fast)
  Fast,       ///< O(active)-per-round settled-state engine
  Reference,  ///< beep::Simulation driving the textbook algorithm
};

std::string engine_kind_name(EngineKind k);
/// Returns false (leaving `out` untouched) on an unknown name.
bool parse_engine_kind(const std::string& name, EngineKind* out);

/// Round-kernel selection for the fast engine. All three kernels are proven
/// stream-identical (same levels, same RoundEvents, round for round — see
/// tests/test_kernels.cpp), so the choice never changes a result, only the
/// wall-clock; Auto resolves deterministically (currently: always Frontier).
/// Irrelevant under receiver noise, where every kernel runs the same dense
/// full sweep.
enum class KernelKind {
  Auto,      ///< let the engine choose (deterministic per config)
  Scalar,    ///< per-vertex loops over CSR — the oracle the others are proven against
  Bit,       ///< bit-packed send/heard masks, word-wide OR over blocked adjacency
  Frontier,  ///< beeper-frontier push/pull visiting only what can change
  Sharded,   ///< bit-kernel round split into word-aligned shards on a TaskPool
};

std::string kernel_kind_name(KernelKind k);
/// Returns false (leaving `out` untouched) on an unknown name.
bool parse_kernel_kind(const std::string& name, KernelKind* out);

/// Deterministic Auto resolution — a pure function of the requested kind, so
/// the same config always runs the same kernel (the determinism gates diff
/// runs byte-for-byte). Currently Auto -> Frontier, the measured winner on
/// the sparse benchmark families. Defined in round_kernel.cpp.
KernelKind resolve_kernel(KernelKind kind) noexcept;

/// Config-aware overload: with intra-round parallelism requested
/// (shard_threads != 1), Auto resolves to the sharded kernel — the only one
/// that can use the extra workers; otherwise identical to the 1-arg form.
/// Still a pure function of its inputs, so determinism gates hold.
KernelKind resolve_kernel(KernelKind kind, std::size_t shard_threads) noexcept;

/// The sharded kernel's barrier-phased round, in execution order. The names
/// double as tracer span names (static storage, as the tracer requires) and
/// as the `phase_ms` keys of the beepmis.timeseries.v1 artifact.
inline constexpr std::size_t kShardPhaseCount = 6;
inline constexpr const char* kShardPhaseNames[kShardPhaseCount] = {
    "shard.decide", "shard.stamp",  "shard.update",
    "shard.apply",  "shard.settle", "shard.fold"};
inline constexpr const char* kShardPhaseKeys[kShardPhaseCount] = {
    "decide", "stamp", "update", "apply", "settle", "fold"};

/// Cumulative phase telemetry of a sharded-kernel run, accumulated only over
/// instrumented rounds (config.phase_telemetry or a live tracing session).
/// Everything is a running total so samplers can diff two snapshots to get
/// exact per-window means without the kernel keeping any history:
/// per-round phase wall = phase_ms[i] / rounds, load imbalance over a window
/// = Δmax_busy_ms / (Δbusy_ms / shards), barrier-wait share
/// = barrier_wait_ms / (barrier_wait_ms + busy_ms). The work counters are
/// deterministic vertex tallies (crosser rows excepted — those depend on the
/// shard layout), summed over shards and rounds.
struct ShardTelemetry {
  std::size_t shards = 0;     ///< shard == worker count of the private pool
  std::uint64_t rounds = 0;   ///< instrumented rounds folded into the totals
  std::array<double, kShardPhaseCount> phase_ms{};  ///< coordinator wall
  double busy_ms = 0.0;          ///< Σ rounds Σ shards task-body time
  double max_busy_ms = 0.0;      ///< Σ rounds max-shard task-body time
  double barrier_wait_ms = 0.0;  ///< Σ rounds Σ phases idle-at-barrier time
  std::uint64_t active_vertices = 0;     ///< pre-round |active|
  std::uint64_t coin_beepers = 0;        ///< coin-frontier beepers
  std::uint64_t crosser_rows = 0;        ///< cross-shard delta rows (dp+dc)
  std::uint64_t settled_candidates = 0;  ///< settlement candidates harvested

  /// max/mean per-shard busy time over the accumulated rounds (1.0 =
  /// perfectly balanced); 0 when nothing was accumulated.
  double imbalance() const noexcept {
    return busy_ms > 0.0 && shards > 0
               ? max_busy_ms / (busy_ms / static_cast<double>(shards))
               : 0.0;
  }
};

/// Everything make_engine needs besides the graph. A run is a pure function
/// of (graph, config): the seed fixes per-node streams, noise draws, and —
/// via the caller's derived init/fault streams — the whole trajectory.
struct EngineConfig {
  Variant variant = Variant::GlobalDelta;
  EngineKind kind = EngineKind::Auto;
  KernelKind kernel = KernelKind::Auto;
  std::uint64_t seed = 1;
  std::int32_t c1 = 0;  ///< lmax constant override (0 = paper default)
  beep::ChannelNoise noise = {};
  beep::Duplex duplex = beep::Duplex::Full;
  /// Worker threads for intra-round sharded execution (KernelKind::Sharded;
  /// Auto resolves to it when != 1): 1 = serial, 0 = one per hardware
  /// thread. Results are bit-identical for every value — the shard count is
  /// derived from the graph alone and every phase writes only shard-owned
  /// state (see docs/architecture.md, "Intra-round sharding").
  std::size_t shard_threads = 1;
  /// Collect ShardTelemetry every round even without a tracing session (the
  /// sharded kernel also collects whenever the tracer is live). Never changes
  /// a result — only clock reads and shard-owned tallies; the
  /// BM_EngineRunSharded_Telemetry bench pair holds the cost at <= 2%.
  bool phase_telemetry = false;
};

/// Uniform runtime interface over the self-stabilizing MIS executors: the
/// policy-templated fast engine and the reference beep::Simulation adapter.
/// Everything above core (exp::runner, exp::sweep, the CLI tools, the
/// benches) drives runs through this surface, so engine selection is a
/// config knob instead of a compile-time fork.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Executor identity for manifests/logs, e.g. "fast-alg1".
  virtual std::string name() const = 0;
  /// Resolved round-kernel identity for manifests/logs ("scalar", "bit",
  /// "frontier"); "none" for executors without a kernel layer (reference).
  virtual std::string kernel_name() const { return "none"; }
  virtual const graph::Graph& graph() const noexcept = 0;
  /// Rounds executed so far.
  virtual std::uint64_t round() const noexcept = 0;
  virtual std::int32_t level(graph::VertexId v) const = 0;
  virtual std::int32_t lmax(graph::VertexId v) const = 0;
  /// The level encoding MIS membership (-lmax(v) for Algorithm 1, 0 for
  /// Algorithm 2) — what initial-configuration policies need to plant
  /// members without knowing the variant.
  virtual std::int32_t member_level(graph::VertexId v) const = 0;
  /// Sets ℓ(v) (initial-configuration setup); checked against the variant's
  /// admissible range.
  virtual void set_level(graph::VertexId v, std::int32_t level) = 0;

  /// Executes one synchronous round.
  virtual void step() = 0;
  /// Runs until stabilization or `max_rounds` additional rounds; returns the
  /// number of rounds executed.
  virtual std::uint64_t run_to_stabilization(std::uint64_t max_rounds) = 0;
  /// True iff S_t = V (every vertex is an MIS member or dominated by one).
  virtual bool is_stabilized() const = 0;
  /// Current I_t.
  virtual std::vector<bool> mis_members() const = 0;

  /// Overwrites v's RAM with an arbitrary in-range value drawn from `rng` —
  /// the paper's transient-fault model, mid-run. Draw-for-draw identical
  /// across engines.
  virtual void corrupt(graph::VertexId v, support::Rng& rng) = 0;

  /// Attaches a non-owning per-round observer (one obs::RoundEvent per
  /// step(), identical streams across engines). Use obs::TeeObserver to fan
  /// out to several. Null detaches where supported.
  virtual void set_observer(obs::RoundObserver* observer) = 0;
  /// Routes internal timers into `registry` (may be null to detach; a no-op
  /// for engines without internal instrumentation).
  virtual void set_metrics(obs::MetricsRegistry* registry) = 0;

  /// Snapshots the cumulative shard-phase telemetry. Returns false (leaving
  /// `out` untouched) on executors without a sharded kernel or when nothing
  /// was accumulated yet — callers degrade to round-only sampling.
  virtual bool shard_telemetry(ShardTelemetry* out) const {
    (void)out;
    return false;
  }
};

/// Builds the requested executor for `config.variant` on `g`. EngineKind::
/// Auto resolves to the fast engine — it covers the full model surface
/// (faults, noise, duplex), so nothing ever needs the slow path implicitly.
std::unique_ptr<Engine> make_engine(const graph::Graph& g,
                                    const EngineConfig& config);

/// Fault-injection helpers mirroring beep::FaultInjector draw-for-draw
/// (same Floyd k-subset selection, same per-node corruption draws), so
/// engine-routed runs reproduce Simulation-routed ones exactly. When
/// `recovery` is given, the injection is reported to it as a fault onset
/// (opening a recovery epoch at the current engine round); the RNG draw
/// sequence is identical with or without a tracker.
std::vector<graph::VertexId> corrupt_random(
    Engine& engine, std::size_t count, support::Rng& rng,
    obs::RecoveryTracker* recovery = nullptr);
void corrupt_nodes(Engine& engine, std::span<const graph::VertexId> nodes,
                   support::Rng& rng,
                   obs::RecoveryTracker* recovery = nullptr);
void corrupt_all(Engine& engine, support::Rng& rng,
                 obs::RecoveryTracker* recovery = nullptr);

}  // namespace beepmis::core
