#include "src/support/task_pool.hpp"

#include <algorithm>

#include "src/support/check.hpp"

namespace beepmis::support {

std::atomic<TaskPool::Observer*> TaskPool::observer_{nullptr};

void TaskPool::set_observer(Observer* observer) noexcept {
  observer_.store(observer, std::memory_order_release);
}

std::size_t TaskPool::resolve_thread_count(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

TaskPool::TaskPool(std::size_t threads, const char* label)
    : threads_(threads), label_(label) {
  BEEPMIS_CHECK(threads >= 1, "TaskPool needs at least one thread");
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TaskPool::worker_loop(std::size_t worker_index) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_.wait(lock,
               [&] { return stopping_ || (next_ < count_ && !abort_); });
    if (stopping_) return;
    run_tasks(lock, worker_index);
  }
}

void TaskPool::run_tasks(std::unique_lock<std::mutex>& lock,
                         std::size_t worker_index) {
  while (next_ < count_ && !abort_) {
    const std::size_t index = next_++;
    const std::function<void(std::size_t)>* fn = fn_;
    lock.unlock();
    Observer* const obs = observer_.load(std::memory_order_acquire);
    std::chrono::steady_clock::time_point start;
    if (obs != nullptr) {
      obs->on_task_start(label_, worker_index, index);
      start = std::chrono::steady_clock::now();
    }
    std::exception_ptr error;
    try {
      (*fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    if (obs != nullptr)
      obs->on_task(label_, worker_index, index, start,
                   std::chrono::steady_clock::now());
    lock.lock();
    ++done_;
    if (error != nullptr) {
      errors_.emplace_back(index, error);
      abort_ = true;  // stop claiming; already-claimed tasks still finish
    }
    if (done_ == next_) drained_.notify_all();
  }
}

void TaskPool::parallel_for(std::size_t count,
                            const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
  {
    std::unique_lock<std::mutex> lock(mu_);
    BEEPMIS_CHECK(count_ == 0,
                  "TaskPool::parallel_for: a batch is already running "
                  "(nested or concurrent use is not supported)");
    count_ = count;
    fn_ = &fn;
    next_ = 0;
    done_ = 0;
    abort_ = false;
    wake_.notify_all();

    // The caller is a worker too: with threads == 1 this runs the whole
    // batch inline, making the serial baseline the identical code path.
    run_tasks(lock, 0);

    drained_.wait(lock, [&] {
      return done_ == next_ && (next_ >= count_ || abort_);
    });
    errors = std::move(errors_);
    errors_.clear();
    count_ = 0;
    fn_ = nullptr;
    next_ = 0;
    done_ = 0;
    abort_ = false;
  }
  if (!errors.empty()) {
    // Ascending claim order means every index below the lowest thrower ran
    // and succeeded — rethrowing it is deterministic for any thread count.
    auto lowest = std::min_element(
        errors.begin(), errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(lowest->second);
  }
}

}  // namespace beepmis::support
