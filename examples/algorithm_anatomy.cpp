/// Algorithm anatomy: a round-by-round visualization of Algorithm 1's level
/// dynamics on a path graph — watch competition resolve into the stable
/// MIS pattern. Each row is a round; each column a vertex:
///     'M' member (ℓ = −ℓmax)     '#' prominent (ℓ ≤ 0)
///     digits ℓ for 0 < ℓ ≤ 9     '+' 9 < ℓ < ℓmax      '.' capped (ℓmax)
/// A '*' marks vertices that beeped that round.

#include <cstdio>
#include <memory>

#include "src/beep/network.hpp"
#include "src/core/init.hpp"
#include "src/core/lmax.hpp"
#include "src/core/selfstab_mis.hpp"
#include "src/graph/generators.hpp"
#include "src/mis/verifier.hpp"

namespace {

char glyph(const beepmis::core::SelfStabMis& a, beepmis::graph::VertexId v) {
  const auto l = a.level(v);
  if (l == -a.lmax(v)) return 'M';
  if (l <= 0) return '#';
  if (l == a.lmax(v)) return '.';
  if (l <= 9) return static_cast<char>('0' + l);
  return '+';
}

}  // namespace

int main() {
  using namespace beepmis;

  constexpr std::size_t kN = 64;
  const graph::Graph g = graph::make_path(kN);
  auto algo = std::make_unique<core::SelfStabMis>(
      g, core::lmax_global_delta(g, 4), core::Knowledge::GlobalMaxDegree);
  auto* a = algo.get();
  beep::Simulation sim(g, std::move(algo), 2024);
  support::Rng chaos(5);
  core::apply_init(*a, core::InitPolicy::UniformRandom, chaos);

  std::printf("Algorithm 1 on a %zu-vertex path (lmax = %d), arbitrary "
              "start.\nLevels per round (see legend in source):\n\n",
              kN, a->lmax(0));

  auto print_row = [&](unsigned long long round) {
    std::printf("%4llu  ", round);
    for (graph::VertexId v = 0; v < kN; ++v) std::putchar(glyph(*a, v));
    std::printf("   beeps: ");
    for (graph::VertexId v = 0; v < kN; ++v)
      std::putchar(sim.round() > 0 && sim.last_sent()[v] ? '*' : ' ');
    std::printf("\n");
  };

  print_row(0);
  for (int r = 1; r <= 200 && !a->is_stabilized(); ++r) {
    sim.step();
    print_row(sim.round());
  }

  const auto members = a->mis_members();
  std::printf("\nstabilized: %s after %llu rounds; MIS size %zu; valid %s\n",
              a->is_stabilized() ? "yes" : "no",
              static_cast<unsigned long long>(sim.round()),
              mis::member_count(members),
              mis::is_mis(g, members) ? "yes" : "NO");
  std::printf("final pattern: every '.' vertex is dominated by an adjacent "
              "'M'; M vertices beep forever, keeping the pattern locked.\n");
  return a->is_stabilized() ? 0 : 1;
}
