#pragma once

#include <chrono>
#include <cstdint>

#include "src/obs/metrics.hpp"

namespace beepmis::obs {

/// RAII region timer: records the scope's wall-clock duration into a
/// TimerStat on destruction. A null target disarms the timer entirely
/// (no clock reads), so instrumented code paths can take an optional
/// registry and stay free when telemetry is off:
///
///   void Engine::refresh() {
///     ScopedTimer t(refresh_timer_);   // TimerStat* cached at set_metrics
///     ...
///   }
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat* stat) : stat_(stat) {
    if (stat_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  /// Convenience: look the timer up by name; `registry` may be null.
  ScopedTimer(MetricsRegistry* registry, const char* name)
      : ScopedTimer(registry != nullptr ? &registry->timer(name) : nullptr) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (stat_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    stat_->record_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

 private:
  TimerStat* stat_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace beepmis::obs
