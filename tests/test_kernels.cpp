#include "src/core/round_kernel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/fast_engine.hpp"
#include "src/core/init.hpp"
#include "src/graph/generators.hpp"

namespace beepmis::core {
namespace {

// The kernel contract: Scalar, Bit, and Frontier produce the same level
// vector, the same settlement, and the same MIS, round for round, from any
// starting configuration, under full and half duplex, across mid-run
// corruption. These tests run WITHOUT observers: that keeps the engines on
// the non-observing step, which on AVX-512 hosts routes the frontier
// kernel through its dense SIMD sweep (kernel_simd.hpp) — so the sweep is
// proven bit-identical here, not just the indexed loops. On hosts without
// AVX-512 the same tests still check the three indexed implementations
// against each other.

template <typename Policy>
struct Trio {
  FastEngine<Policy> scalar;
  FastEngine<Policy> bit;
  FastEngine<Policy> frontier;

  Trio(const graph::Graph& g, const LmaxVector& lmax, std::uint64_t seed,
       beep::Duplex duplex = beep::Duplex::Full)
      : scalar(g, lmax, seed, {}, duplex, KernelKind::Scalar),
        bit(g, lmax, seed, {}, duplex, KernelKind::Bit),
        frontier(g, lmax, seed, {}, duplex, KernelKind::Frontier) {}

  // Identical adversarial starting levels on all three engines: the scalar
  // engine corrupts from a seeded stream, the others copy its levels.
  void corrupt_init(std::uint64_t seed) {
    support::Rng c(seed);
    const std::size_t n = scalar.graph().vertex_count();
    for (graph::VertexId v = 0; v < n; ++v) scalar.corrupt(v, c);
    for (graph::VertexId v = 0; v < n; ++v) {
      bit.set_level(v, scalar.level(v));
      frontier.set_level(v, scalar.level(v));
    }
  }

  void run_lockstep(int rounds, const std::vector<int>& corrupt_at = {},
                    std::size_t corrupt_count = 0) {
    support::Rng f1(0xc0), f2(0xc0), f3(0xc0);
    const std::size_t n = scalar.graph().vertex_count();
    for (int r = 0; r < rounds; ++r) {
      for (int cr : corrupt_at) {
        if (cr != r) continue;
        const auto a = corrupt_random(scalar, corrupt_count, f1);
        const auto b = corrupt_random(bit, corrupt_count, f2);
        const auto c = corrupt_random(frontier, corrupt_count, f3);
        ASSERT_EQ(a, b) << "round " << r;
        ASSERT_EQ(a, c) << "round " << r;
      }
      scalar.step();
      bit.step();
      frontier.step();
      for (graph::VertexId v = 0; v < n; ++v) {
        ASSERT_EQ(bit.level(v), scalar.level(v))
            << "bit round " << r << " vertex " << v;
        ASSERT_EQ(frontier.level(v), scalar.level(v))
            << "frontier round " << r << " vertex " << v;
      }
      ASSERT_EQ(bit.active_count(), scalar.active_count()) << "round " << r;
      ASSERT_EQ(frontier.active_count(), scalar.active_count())
          << "round " << r;
    }
    EXPECT_EQ(bit.mis_members(), scalar.mis_members());
    EXPECT_EQ(frontier.mis_members(), scalar.mis_members());
    EXPECT_EQ(bit.is_stabilized(), scalar.is_stabilized());
    EXPECT_EQ(frontier.is_stabilized(), scalar.is_stabilized());
  }
};

TEST(Kernels, ThreeKernelsLockstepAlg1) {
  support::Rng grng(21);
  const auto graphs = {
      graph::make_path(48),
      graph::make_grid(7, 7),
      graph::make_erdos_renyi_avg_degree(192, 8.0, grng),
      graph::make_barabasi_albert(128, 3, grng),
  };
  for (const auto& g : graphs) {
    Trio<Alg1Policy> trio(g, lmax_global_delta(g), 1234);
    trio.corrupt_init(7);
    trio.run_lockstep(300);
  }
}

TEST(Kernels, ThreeKernelsLockstepAlg2) {
  support::Rng grng(22);
  const auto graphs = {
      graph::make_star(48),
      graph::make_erdos_renyi_avg_degree(192, 8.0, grng),
      graph::make_barabasi_albert(128, 3, grng),
  };
  for (const auto& g : graphs) {
    Trio<Alg2Policy> trio(g, lmax_one_hop(g), 4321);
    trio.corrupt_init(9);
    trio.run_lockstep(300);
  }
}

TEST(Kernels, LockstepSurvivesMidRunCorruption) {
  support::Rng grng(23);
  const auto g = graph::make_erdos_renyi_avg_degree(160, 8.0, grng);
  {
    Trio<Alg1Policy> trio(g, lmax_global_delta(g), 55);
    trio.corrupt_init(3);
    trio.run_lockstep(400, /*corrupt_at=*/{60, 140, 260}, /*count=*/24);
  }
  {
    Trio<Alg2Policy> trio(g, lmax_one_hop(g), 56);
    trio.corrupt_init(4);
    trio.run_lockstep(400, /*corrupt_at=*/{60, 140, 260}, /*count=*/24);
  }
}

TEST(Kernels, HalfDuplexLockstep) {
  support::Rng grng(24);
  const auto g = graph::make_erdos_renyi_avg_degree(160, 8.0, grng);
  {
    Trio<Alg1Policy> trio(g, lmax_global_delta(g), 77, beep::Duplex::Half);
    trio.corrupt_init(5);
    trio.run_lockstep(300);
  }
  {
    Trio<Alg2Policy> trio(g, lmax_one_hop(g), 78, beep::Duplex::Half);
    trio.corrupt_init(6);
    trio.run_lockstep(300);
  }
}

TEST(Kernels, SweepSizedGraphMatchesScalar) {
  // Large enough that the frontier kernel's dense-sweep gate
  // (n >= 64, |active| * 8 >= n) holds for the whole chaos phase on
  // AVX-512 hosts, and the endgame drops below it — both paths and the
  // crossover are exercised in one run.
  support::Rng grng(25);
  const auto g = graph::make_erdos_renyi_avg_degree(1024, 8.0, grng);
  Trio<Alg1Policy> trio(g, lmax_global_delta(g), 99);
  trio.corrupt_init(11);
  trio.run_lockstep(200);
}

TEST(Kernels, AutoResolvesToFrontier) {
  EXPECT_EQ(resolve_kernel(KernelKind::Auto), KernelKind::Frontier);
  EXPECT_EQ(resolve_kernel(KernelKind::Scalar), KernelKind::Scalar);
  EXPECT_EQ(resolve_kernel(KernelKind::Bit), KernelKind::Bit);
  EXPECT_EQ(resolve_kernel(KernelKind::Frontier), KernelKind::Frontier);
}

TEST(Kernels, AutoWithShardThreadsResolvesToSharded) {
  // The config-aware overload: asking for intra-round parallelism flips
  // Auto to the sharded kernel; explicit choices always win.
  EXPECT_EQ(resolve_kernel(KernelKind::Auto, 1), KernelKind::Frontier);
  EXPECT_EQ(resolve_kernel(KernelKind::Auto, 8), KernelKind::Sharded);
  EXPECT_EQ(resolve_kernel(KernelKind::Auto, 0), KernelKind::Sharded);
  EXPECT_EQ(resolve_kernel(KernelKind::Frontier, 8), KernelKind::Frontier);
  EXPECT_EQ(resolve_kernel(KernelKind::Sharded, 1), KernelKind::Sharded);
}

TEST(Kernels, EngineExposesResolvedKernelName) {
  const auto g = graph::make_path(8);
  const auto lmax = lmax_global_delta(g);
  const std::array<std::pair<KernelKind, const char*>, 4> cases = {{
      {KernelKind::Auto, "frontier"},
      {KernelKind::Scalar, "scalar"},
      {KernelKind::Bit, "bit"},
      {KernelKind::Frontier, "frontier"},
  }};
  for (const auto& [kind, name] : cases) {
    FastEngine<Alg1Policy> e(g, lmax, 1, {}, beep::Duplex::Full, kind);
    EXPECT_EQ(e.kernel_name(), name);
  }
  FastEngine<Alg1Policy> sh(g, lmax, 1, {}, beep::Duplex::Full,
                            KernelKind::Auto, /*shard_threads=*/4);
  EXPECT_EQ(sh.kernel_name(), "sharded");
}

// ---------------------------------------------------------------------------
// Sharded-vs-serial lockstep: the sharded kernel must reproduce the serial
// kernels' trajectories bit for bit at EVERY shard count — levels, active
// counts, and the full per-round RoundEvent stream. The worker count only
// changes who computes each word, never what is computed: coins are pure
// functions of (seed, node, round), every phase writes only shard-owned
// state, and the coordinator folds in ascending shard order.

/// Captures the engine's per-round event stream for exact comparison.
struct EventLog final : obs::RoundObserver {
  std::vector<obs::RoundEvent> events;
  void on_round(const obs::RoundEvent& event) override {
    events.push_back(event);
  }
};

template <typename Policy>
struct ShardedDuo {
  FastEngine<Policy> serial;
  FastEngine<Policy> sharded;
  EventLog serial_log;
  EventLog sharded_log;

  ShardedDuo(const graph::Graph& g, const LmaxVector& lmax,
             std::uint64_t seed, KernelKind serial_kind,
             std::size_t shard_threads,
             beep::Duplex duplex = beep::Duplex::Full)
      : serial(g, lmax, seed, {}, duplex, serial_kind),
        sharded(g, lmax, seed, {}, duplex, KernelKind::Sharded,
                shard_threads) {
    serial.set_observer(&serial_log);
    sharded.set_observer(&sharded_log);
  }

  void corrupt_init(std::uint64_t seed) {
    support::Rng c(seed);
    const std::size_t n = serial.graph().vertex_count();
    for (graph::VertexId v = 0; v < n; ++v) serial.corrupt(v, c);
    for (graph::VertexId v = 0; v < n; ++v)
      sharded.set_level(v, serial.level(v));
  }

  void run_lockstep(int rounds, const std::vector<int>& corrupt_at = {},
                    std::size_t corrupt_count = 0) {
    support::Rng f1(0xc0), f2(0xc0);
    const std::size_t n = serial.graph().vertex_count();
    for (int r = 0; r < rounds; ++r) {
      for (int cr : corrupt_at) {
        if (cr != r) continue;
        const auto a = corrupt_random(serial, corrupt_count, f1);
        const auto b = corrupt_random(sharded, corrupt_count, f2);
        ASSERT_EQ(a, b) << "round " << r;
      }
      serial.step();
      sharded.step();
      for (graph::VertexId v = 0; v < n; ++v) {
        ASSERT_EQ(sharded.level(v), serial.level(v))
            << "round " << r << " vertex " << v;
      }
      ASSERT_EQ(sharded.active_count(), serial.active_count())
          << "round " << r;
      ASSERT_EQ(sharded_log.events.back(), serial_log.events.back())
          << "round " << r;
    }
    EXPECT_EQ(sharded_log.events, serial_log.events);
    EXPECT_EQ(sharded.mis_members(), serial.mis_members());
    EXPECT_EQ(sharded.is_stabilized(), serial.is_stabilized());
  }
};

// Worker counts exercised everywhere below: 1 (inline serial pool), 3 (odd
// shard split), 8 (more workers than this host has cores — oversubscribed),
// 0 (one per hardware thread, host-dependent). Byte-identical output across
// all of them IS the determinism contract.
constexpr std::size_t kShardCounts[] = {1, 3, 8, 0};

TEST(Kernels, ShardedLockstepGridAlg1) {
  support::Rng grng(31);
  const auto graphs = {
      graph::make_grid(9, 9),
      graph::make_erdos_renyi_avg_degree(192, 8.0, grng),
      graph::make_barabasi_albert(130, 3, grng),
  };
  const KernelKind serial_kinds[] = {KernelKind::Scalar, KernelKind::Bit,
                                     KernelKind::Frontier};
  for (const auto& g : graphs) {
    const auto lmax = lmax_global_delta(g);
    for (KernelKind serial_kind : serial_kinds) {
      for (std::size_t st : kShardCounts) {
        ShardedDuo<Alg1Policy> duo(g, lmax, 1234, serial_kind, st);
        duo.corrupt_init(7);
        duo.run_lockstep(250);
      }
    }
  }
}

TEST(Kernels, ShardedLockstepGridAlg2) {
  support::Rng grng(32);
  const auto graphs = {
      graph::make_star(48),
      graph::make_erdos_renyi_avg_degree(192, 8.0, grng),
      graph::make_barabasi_albert(130, 3, grng),
  };
  const KernelKind serial_kinds[] = {KernelKind::Scalar, KernelKind::Bit,
                                     KernelKind::Frontier};
  for (const auto& g : graphs) {
    const auto lmax = lmax_one_hop(g);
    for (KernelKind serial_kind : serial_kinds) {
      for (std::size_t st : kShardCounts) {
        ShardedDuo<Alg2Policy> duo(g, lmax, 4321, serial_kind, st);
        duo.corrupt_init(9);
        duo.run_lockstep(250);
      }
    }
  }
}

TEST(Kernels, ShardedSurvivesMidRunCorruption) {
  support::Rng grng(33);
  const auto g = graph::make_erdos_renyi_avg_degree(160, 8.0, grng);
  for (std::size_t st : kShardCounts) {
    {
      ShardedDuo<Alg1Policy> duo(g, lmax_global_delta(g), 55,
                                 KernelKind::Frontier, st);
      duo.corrupt_init(3);
      duo.run_lockstep(400, /*corrupt_at=*/{60, 140, 260}, /*count=*/24);
    }
    {
      ShardedDuo<Alg2Policy> duo(g, lmax_one_hop(g), 56, KernelKind::Bit,
                                 st);
      duo.corrupt_init(4);
      duo.run_lockstep(400, /*corrupt_at=*/{60, 140, 260}, /*count=*/24);
    }
  }
}

TEST(Kernels, ShardedHalfDuplexLockstep) {
  support::Rng grng(34);
  const auto g = graph::make_erdos_renyi_avg_degree(160, 8.0, grng);
  for (std::size_t st : kShardCounts) {
    {
      ShardedDuo<Alg1Policy> duo(g, lmax_global_delta(g), 77,
                                 KernelKind::Scalar, st, beep::Duplex::Half);
      duo.corrupt_init(5);
      duo.run_lockstep(250);
    }
    {
      ShardedDuo<Alg2Policy> duo(g, lmax_one_hop(g), 78,
                                 KernelKind::Frontier, st,
                                 beep::Duplex::Half);
      duo.corrupt_init(6);
      duo.run_lockstep(250);
    }
  }
}

TEST(Kernels, ShardedSweepSizedGraphMatchesFrontier) {
  // Big enough for several 64-word shards per worker and a long all-active
  // chaos phase; also checks the shard-count clamp (more workers than
  // words is fine).
  support::Rng grng(35);
  const auto g = graph::make_erdos_renyi_avg_degree(1024, 8.0, grng);
  for (std::size_t st : kShardCounts) {
    ShardedDuo<Alg1Policy> duo(g, lmax_global_delta(g), 99,
                               KernelKind::Frontier, st);
    duo.corrupt_init(11);
    duo.run_lockstep(200);
  }
}

}  // namespace
}  // namespace beepmis::core
