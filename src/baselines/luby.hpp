#pragma once

#include <cstdint>
#include <vector>

#include "src/baselines/local.hpp"
#include "src/graph/graph.hpp"

namespace beepmis::baselines {

/// Luby's randomized MIS algorithm (1986) in the broadcast-LOCAL model — the
/// classic message-passing reference point the paper's introduction cites.
///
/// One Luby phase = 2 LOCAL rounds:
///   round A: every active node draws a uniform 64-bit value and broadcasts
///     it; a node whose value is a strict minimum among its active
///     neighborhood joins the MIS.
///   round B: nodes broadcast their membership; active neighbors of members
///     become out.
/// Terminates when no node is active; O(log n) phases w.h.p.
///
/// Not self-stabilizing (and not meant to be): it is the clean-start
/// reference for MIS size and round counts in experiment E6.
class LubyMis : public local::LocalAlgorithm {
 public:
  enum class Status : std::uint8_t { Active, InMis, Out };

  explicit LubyMis(const graph::Graph& g);

  std::string name() const override { return "luby"; }
  std::size_t node_count() const override { return status_.size(); }
  void compose(std::uint64_t round, std::span<support::Rng> rngs,
               std::span<local::Message> out) override;
  void deliver(std::uint64_t round,
               std::span<const local::Message> all_sent) override;

  Status status(graph::VertexId v) const { return status_[v]; }
  bool terminated() const;
  std::vector<bool> mis_members() const;

 private:
  const graph::Graph* graph_;
  std::vector<Status> status_;
  std::vector<std::uint64_t> value_;  // round-A draw
};

}  // namespace beepmis::baselines
