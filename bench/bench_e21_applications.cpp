/// E21 — the application layer end-to-end: four classic symmetry-breaking
/// primitives, each built from the paper's self-stabilizing MIS by a
/// standard reduction. For every primitive: rounds, output size, and an
/// independent validator verdict. This is the "downstream user" table —
/// what adopting the MIS core actually buys.

#include <iostream>

#include "bench/bench_util.hpp"
#include "src/apps/backbone.hpp"
#include "src/apps/coloring.hpp"
#include "src/apps/matching.hpp"
#include "src/apps/ruling_set.hpp"
#include "src/exp/families.hpp"
#include "src/graph/properties.hpp"
#include "src/mis/verifier.hpp"
#include "src/support/stats.hpp"
#include "src/support/table.hpp"

int main() {
  using namespace beepmis;
  bench::banner(
      "E21: MIS as a subroutine — coloring, matching, ruling set, backbone",
      "each reduction inherits correctness (validator-checked) and "
      "self-stabilization from the MIS core");

  constexpr std::uint64_t kSeeds = 6;
  support::Table t({"primitive", "reduction", "family", "n", "mean rounds",
                    "mean output", "all valid"});

  for (exp::Family fam : {exp::Family::Torus, exp::Family::GeometricAvg8}) {
    constexpr std::size_t kN = 256;
    support::RunningStats col_r, col_k, mat_r, mat_k, rul_r, rul_k, bb_r,
        bb_k;
    bool col_ok = true, mat_ok = true, rul_ok = true, bb_ok = true;
    for (std::uint64_t s = 0; s < kSeeds; ++s) {
      support::Rng grng(300 + s);
      const graph::Graph g = exp::make_family(fam, kN, grng);

      if (const auto c = apps::color_via_selfstab_mis(g, 310 + s, 500000)) {
        col_r.add(static_cast<double>(c->rounds));
        col_k.add(c->colors_used);
        col_ok = col_ok &&
                 apps::is_proper_coloring(
                     g, c->colors,
                     static_cast<std::uint32_t>(g.max_degree() + 1));
      }
      if (const auto m = apps::matching_via_selfstab_mis(g, 320 + s, 500000)) {
        mat_r.add(static_cast<double>(m->rounds));
        mat_k.add(static_cast<double>(m->edges.size()));
        mat_ok = mat_ok && apps::is_maximal_matching(g, m->edges);
      }
      if (const auto r =
              apps::ruling_set_via_selfstab_mis(g, 3, 330 + s, 500000)) {
        rul_r.add(static_cast<double>(r->rounds));
        rul_k.add(static_cast<double>(mis::member_count(r->members)));
        rul_ok = rul_ok && apps::is_ruling_set(g, r->members, 3, 2);
      }
      if (graph::is_connected(g)) {
        if (const auto b =
                apps::backbone_via_selfstab_mis(g, 340 + s, 500000)) {
          bb_r.add(static_cast<double>(b->rounds));
          bb_k.add(static_cast<double>(b->dominators + b->connectors));
          bb_ok = bb_ok && apps::is_connected_dominating_set(g, b->members);
        }
      }
    }
    auto emit = [&](const char* prim, const char* red,
                    const support::RunningStats& r,
                    const support::RunningStats& k, bool ok) {
      t.row()
          .cell(prim)
          .cell(red)
          .cell(exp::family_name(fam))
          .cell(static_cast<std::uint64_t>(kN))
          .cell(r.mean(), 0)
          .cell(k.mean(), 1)
          .cell(ok && r.count() ? "yes" : "NO");
    };
    emit("(D+1)-coloring", "MIS(G x K_{D+1})", col_r, col_k, col_ok);
    emit("maximal matching", "MIS(L(G))", mat_r, mat_k, mat_ok);
    emit("(3,2)-ruling set", "MIS(G^2)", rul_r, rul_k, rul_ok);
    emit("routing backbone (CDS)", "MIS + connectors", bb_r, bb_k, bb_ok);
  }
  std::cout << t.str();
  std::printf(
      "\nreading: every primitive lands validated on every seed; rounds stay "
      "O(log of the reduced\ngraph), which for coloring/matching means the "
      "(D+1)- or degree-blown-up instance.\n");
  return 0;
}
