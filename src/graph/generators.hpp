#pragma once

#include <cstddef>

#include "src/graph/graph.hpp"
#include "src/support/rng.hpp"

namespace beepmis::graph {

using support::Rng;

// Deterministic families -----------------------------------------------------

/// Path P_n: 0-1-2-…-(n-1).
Graph make_path(std::size_t n);
/// Cycle C_n (n >= 3).
Graph make_cycle(std::size_t n);
/// Star K_{1,n-1} with center 0.
Graph make_star(std::size_t n);
/// Complete graph K_n.
Graph make_complete(std::size_t n);
/// Complete bipartite K_{a,b} (parts [0,a) and [a,a+b)).
Graph make_complete_bipartite(std::size_t a, std::size_t b);
/// rows×cols 2D grid; `torus` adds wraparound edges.
Graph make_grid(std::size_t rows, std::size_t cols, bool torus = false);
/// Complete binary tree on n vertices (heap indexing).
Graph make_binary_tree(std::size_t n);
/// d-dimensional hypercube Q_d (2^d vertices).
Graph make_hypercube(std::size_t dim);
/// Caterpillar: a spine path of `spine` vertices, `legs` pendant leaves per
/// spine vertex. Degenerate-degree family used in heterogeneity tests.
Graph make_caterpillar(std::size_t spine, std::size_t legs);
/// Lollipop: K_m glued to a path of p extra vertices. Classic mixing-time
/// pathology; exercises the asymmetric-lmax code paths.
Graph make_lollipop(std::size_t clique, std::size_t path);
/// Star of cliques: `cliques` disjoint K_k, one designated vertex of each
/// clique connected to a global hub. Extreme degree heterogeneity — the
/// regime where Thm 2.1 (global Δ) and Thm 2.2 (own degree) lmax policies
/// diverge most.
Graph make_star_of_cliques(std::size_t cliques, std::size_t k);

// Random families -------------------------------------------------------------

/// Erdős–Rényi G(n, p).
Graph make_erdos_renyi(std::size_t n, double p, Rng& rng);
/// G(n, p) with p chosen so the expected average degree is `avg_degree`.
Graph make_erdos_renyi_avg_degree(std::size_t n, double avg_degree, Rng& rng);
/// Random d-regular via the configuration/pairing model, resampling until the
/// multigraph is simple (n·d must be even; d < n).
Graph make_random_regular(std::size_t n, std::size_t d, Rng& rng);
/// Barabási–Albert preferential attachment: each new vertex attaches `m`
/// edges; yields a power-law degree distribution (heavy heterogeneity).
Graph make_barabasi_albert(std::size_t n, std::size_t m, Rng& rng);
/// Random geometric graph: n points uniform in the unit square, edge iff
/// distance <= radius. The canonical wireless-sensor-network topology the
/// beeping model motivates.
Graph make_random_geometric(std::size_t n, double radius, Rng& rng);
/// Uniform random labelled tree (Prüfer-free: random attachment to an
/// earlier vertex — a random recursive tree).
Graph make_random_tree(std::size_t n, Rng& rng);
/// Watts–Strogatz small world: ring lattice with k nearest neighbors per
/// side (even k), each edge rewired with probability beta. Clustering +
/// short diameter; a classic ad-hoc-network topology.
Graph make_watts_strogatz(std::size_t n, std::size_t k, double beta,
                          Rng& rng);
/// Planted-partition stochastic block model: `blocks` equal communities,
/// intra-community edge probability p_in, inter-community p_out.
Graph make_planted_partition(std::size_t n, std::size_t blocks, double p_in,
                             double p_out, Rng& rng);

}  // namespace beepmis::graph
