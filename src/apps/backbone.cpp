#include "src/apps/backbone.hpp"

#include <queue>

#include "src/exp/runner.hpp"
#include "src/graph/properties.hpp"
#include "src/support/check.hpp"

namespace beepmis::apps {

namespace {

/// Vertices of the backbone-induced subgraph reachable from `start`.
std::vector<bool> induced_component(const graph::Graph& g,
                                    const std::vector<bool>& members,
                                    graph::VertexId start) {
  std::vector<bool> seen(g.vertex_count(), false);
  std::queue<graph::VertexId> q;
  seen[start] = true;
  q.push(start);
  while (!q.empty()) {
    const auto v = q.front();
    q.pop();
    for (graph::VertexId u : g.neighbors(v))
      if (members[u] && !seen[u]) {
        seen[u] = true;
        q.push(u);
      }
  }
  return seen;
}

}  // namespace

std::optional<BackboneResult> backbone_via_selfstab_mis(
    const graph::Graph& g, std::uint64_t seed, std::uint64_t max_rounds) {
  BEEPMIS_CHECK(graph::is_connected(g),
                "backbone requires a connected graph");
  BackboneResult out;
  if (g.vertex_count() == 0) return out;

  // Phase 1 (distributed, beeping): elect the dominators.
  auto sim = exp::make_selfstab_sim(g, exp::Variant::GlobalDelta, seed);
  support::Rng init_rng = support::Rng(seed).derive_stream(0xfadedcafe);
  exp::apply_init(*sim, core::InitPolicy::UniformRandom, init_rng);
  const exp::RunResult r = exp::run_to_stabilization(*sim, max_rounds);
  if (!r.stabilized) return std::nullopt;
  out.members = exp::selfstab_mis_members(*sim);
  out.rounds = r.rounds;
  for (bool b : out.members) out.dominators += b;

  // Phase 2 (post-processing): connect the dominators with shortest
  // bridges. Grow one component; repeatedly bridge to the nearest
  // out-of-component dominator (within 3 hops, by the MIS property).
  graph::VertexId seed_dominator = 0;
  while (!out.members[seed_dominator]) ++seed_dominator;

  while (true) {
    const auto comp = induced_component(g, out.members, seed_dominator);
    // Multi-source BFS from the component over the whole graph.
    std::vector<std::int64_t> parent(g.vertex_count(), -1);
    std::vector<bool> visited(g.vertex_count(), false);
    std::queue<graph::VertexId> q;
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
      if (comp[v] && out.members[v]) {
        visited[v] = true;
        q.push(v);
      }
    graph::VertexId target = g.vertex_count();  // sentinel: none found
    while (!q.empty() && target == g.vertex_count()) {
      const auto v = q.front();
      q.pop();
      for (graph::VertexId u : g.neighbors(v)) {
        if (visited[u]) continue;
        visited[u] = true;
        parent[u] = v;
        if (out.members[u] && !comp[u]) {
          target = u;
          break;
        }
        q.push(u);
      }
    }
    if (target == g.vertex_count()) break;  // all dominators connected
    // Add the interior of the bridge path as connectors.
    for (auto v = static_cast<graph::VertexId>(parent[target]);
         !comp[v] || !out.members[v];
         v = static_cast<graph::VertexId>(parent[v])) {
      if (!out.members[v]) {
        out.members[v] = true;
        ++out.connectors;
      }
      if (parent[v] < 0) break;
    }
  }
  return out;
}

bool is_connected_dominating_set(const graph::Graph& g,
                                 const std::vector<bool>& members) {
  BEEPMIS_CHECK(members.size() == g.vertex_count(), "size mismatch");
  if (g.vertex_count() == 0) return true;
  // Domination: every non-member has a member neighbor.
  graph::VertexId any_member = g.vertex_count();
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
    if (members[v]) {
      any_member = v;
      continue;
    }
    bool dominated = false;
    for (graph::VertexId u : g.neighbors(v))
      if (members[u]) {
        dominated = true;
        break;
      }
    if (!dominated) return false;
  }
  if (any_member == g.vertex_count()) return false;  // empty set, n >= 1
  // Connectivity of the induced subgraph.
  const auto comp = induced_component(g, members, any_member);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
    if (members[v] && !comp[v]) return false;
  return true;
}

}  // namespace beepmis::apps
