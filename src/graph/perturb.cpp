#include "src/graph/perturb.hpp"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "src/support/check.hpp"

namespace beepmis::graph {

Graph perturb_edges(const Graph& g, std::size_t add_count,
                    std::size_t remove_count, support::Rng& rng) {
  const std::size_t n = g.vertex_count();
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(g.edge_count());
  for (VertexId v = 0; v < n; ++v)
    for (VertexId u : g.neighbors(v))
      if (v < u) edges.emplace_back(v, u);

  // Remove: random prefix of a partial shuffle.
  remove_count = std::min(remove_count, edges.size());
  for (std::size_t i = 0; i < remove_count; ++i) {
    const std::size_t j = i + rng.below(edges.size() - i);
    std::swap(edges[i], edges[j]);
  }
  std::set<std::pair<VertexId, VertexId>> kept(edges.begin() + remove_count,
                                               edges.end());

  // Add: rejection-sample non-edges. Bail out if the graph is too dense to
  // supply them (complete graph).
  const std::size_t max_edges = n >= 2 ? n * (n - 1) / 2 : 0;
  add_count = std::min(add_count, max_edges - kept.size());
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < add_count && attempts < 100 * (add_count + 1)) {
    ++attempts;
    auto u = static_cast<VertexId>(rng.below(n));
    auto v = static_cast<VertexId>(rng.below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (kept.emplace(u, v).second) ++added;
  }

  GraphBuilder b(n, g.name() + "+churn");
  for (const auto& [u, v] : kept) b.add_edge(u, v);
  return std::move(b).build();
}

Graph isolate_vertices(const Graph& g, std::size_t count, support::Rng& rng) {
  const std::size_t n = g.vertex_count();
  BEEPMIS_CHECK(count <= n, "cannot isolate more vertices than exist");
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.below(n - i);
    std::swap(order[i], order[j]);
  }
  std::vector<bool> dead(n, false);
  for (std::size_t i = 0; i < count; ++i) dead[order[i]] = true;

  GraphBuilder b(n, g.name() + "+isolated");
  for (VertexId v = 0; v < n; ++v) {
    if (dead[v]) continue;
    for (VertexId u : g.neighbors(v))
      if (v < u && !dead[u]) b.add_edge(v, u);
  }
  return std::move(b).build();
}

}  // namespace beepmis::graph
