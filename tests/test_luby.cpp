#include "src/baselines/luby.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/graph/generators.hpp"
#include "src/mis/verifier.hpp"

namespace beepmis::baselines {
namespace {

std::pair<std::unique_ptr<local::LocalSimulation>, LubyMis*> sim_on(
    const graph::Graph& g, std::uint64_t seed) {
  auto algo = std::make_unique<LubyMis>(g);
  auto* raw = algo.get();
  return {std::make_unique<local::LocalSimulation>(g, std::move(algo), seed),
          raw};
}

TEST(Luby, ConvergesToValidMisOnManyGraphs) {
  support::Rng grng(4);
  const auto graphs = {
      graph::make_path(50),    graph::make_cycle(51),
      graph::make_star(50),    graph::make_complete(25),
      graph::make_grid(7, 7),  graph::make_erdos_renyi(100, 0.05, grng),
      graph::make_barabasi_albert(100, 3, grng),
  };
  for (const auto& g : graphs) {
    auto [sim, a] = sim_on(g, g.vertex_count() + 1);
    while (!a->terminated() && sim->round() < 1000) sim->step();
    ASSERT_TRUE(a->terminated()) << g.name();
    EXPECT_TRUE(mis::is_mis(g, a->mis_members())) << g.name();
  }
}

TEST(Luby, CompleteGraphNeedsOnePhase) {
  // On K_n some vertex is the unique minimum: one phase (2 rounds) decides
  // membership, a second notify settles everyone.
  const auto g = graph::make_complete(32);
  auto [sim, a] = sim_on(g, 9);
  sim->step();  // draw
  EXPECT_EQ(mis::member_count(a->mis_members()), 1u);
  sim->step();  // notify
  EXPECT_TRUE(a->terminated());
}

TEST(Luby, LogarithmicPhaseCountOnRandomGraphs) {
  support::Rng grng(5);
  const auto g = graph::make_erdos_renyi(2000, 0.005, grng);
  auto [sim, a] = sim_on(g, 3);
  while (!a->terminated() && sim->round() < 200) sim->step();
  ASSERT_TRUE(a->terminated());
  // Luby: O(log n) phases w.h.p.; 2000 vertices should need well under
  // 40 phases (80 LOCAL rounds).
  EXPECT_LT(sim->round(), 80u);
}

TEST(Luby, IsolatedVerticesJoinImmediately) {
  const auto g = graph::GraphBuilder(5).build();
  auto [sim, a] = sim_on(g, 1);
  sim->step();
  for (graph::VertexId v = 0; v < 5; ++v)
    EXPECT_EQ(a->status(v), LubyMis::Status::InMis);
}

TEST(Luby, DeterministicGivenSeed) {
  const auto g = graph::make_cycle(40);
  auto [s1, a1] = sim_on(g, 77);
  auto [s2, a2] = sim_on(g, 77);
  for (int i = 0; i < 30; ++i) {
    s1->step();
    s2->step();
  }
  for (graph::VertexId v = 0; v < 40; ++v)
    EXPECT_EQ(a1->status(v), a2->status(v));
}

}  // namespace
}  // namespace beepmis::baselines
