#include "src/core/state_io.hpp"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace beepmis::core {

namespace {

constexpr const char* kMagic = "beepmis-levels";
constexpr int kVersion = 1;

template <typename Algo>
void save(const Algo& algo, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n' << algo.node_count() << '\n';
  for (graph::VertexId v = 0; v < algo.node_count(); ++v)
    os << algo.level(v) << '\n';
}

template <typename Algo>
bool load(Algo& algo, std::istream& is, std::int32_t lo_factor) {
  std::string magic;
  int version = 0;
  std::size_t n = 0;
  if (!(is >> magic >> version >> n)) return false;
  if (magic != kMagic || version != kVersion) return false;
  if (n != algo.node_count()) return false;
  std::vector<std::int32_t> levels(n);
  for (auto& l : levels)
    if (!(is >> l)) return false;
  // Validate before mutating: all-or-nothing semantics.
  for (graph::VertexId v = 0; v < n; ++v) {
    const std::int32_t lo = lo_factor * algo.lmax(v);
    if (levels[v] < lo || levels[v] > algo.lmax(v)) return false;
  }
  for (graph::VertexId v = 0; v < n; ++v) algo.set_level(v, levels[v]);
  return true;
}

}  // namespace

void save_levels(const SelfStabMis& algo, std::ostream& os) {
  save(algo, os);
}

void save_levels(const SelfStabMisTwoChannel& algo, std::ostream& os) {
  save(algo, os);
}

bool load_levels(SelfStabMis& algo, std::istream& is) {
  return load(algo, is, /*lo_factor=*/-1);
}

bool load_levels(SelfStabMisTwoChannel& algo, std::istream& is) {
  return load(algo, is, /*lo_factor=*/0);
}

}  // namespace beepmis::core
