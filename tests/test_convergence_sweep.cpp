/// Statistical convergence properties across the full (variant × family)
/// matrix at moderate size: stabilization times concentrate (p95 within a
/// small factor of the median), MIS sizes are sane relative to greedy, and
/// repeated runs with different seeds all succeed. These are the "does the
/// distribution look like the theory says" checks, complementing the
/// per-run correctness tests.

#include <gtest/gtest.h>

#include <tuple>

#include "src/exp/families.hpp"
#include "src/exp/runner.hpp"
#include "src/mis/verifier.hpp"
#include "src/support/stats.hpp"

namespace beepmis::exp {
namespace {

using Param = std::tuple<Variant, Family>;

class ConvergenceStats : public ::testing::TestWithParam<Param> {};

TEST_P(ConvergenceStats, TimesConcentrateAndSetsAreSane) {
  const auto [variant, family] = GetParam();
  constexpr std::size_t kN = 256;
  constexpr std::uint64_t kSeeds = 12;

  support::SampleSet rounds;
  support::RunningStats mis_ratio;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    support::Rng grng(1000 + s);
    const graph::Graph g = make_family(family, kN, grng);
    const RunResult r =
        run_variant(g, variant, core::InitPolicy::UniformRandom, 2000 + s,
                    default_round_budget(kN));
    ASSERT_TRUE(r.stabilized) << variant_name(variant) << "/"
                              << family_name(family) << " seed " << s;
    ASSERT_TRUE(r.valid_mis);
    rounds.add(static_cast<double>(r.rounds));

    support::Rng mrng(3000 + s);
    const auto greedy = mis::random_greedy_mis(g, mrng);
    mis_ratio.add(static_cast<double>(r.mis_size) /
                  static_cast<double>(mis::member_count(greedy)));
  }

  // Concentration: the w.h.p. bound implies a light upper tail.
  EXPECT_LT(rounds.quantile(0.95), 3.0 * rounds.median() + 20.0);
  // Any two maximal independent sets of a graph differ in size by at most
  // a Δ factor; on these bounded-ish-degree families they are close.
  EXPECT_GT(mis_ratio.mean(), 0.4);
  EXPECT_LT(mis_ratio.mean(), 2.5);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConvergenceStats,
    ::testing::Combine(
        ::testing::Values(Variant::GlobalDelta, Variant::OwnDegree,
                          Variant::TwoChannel),
        ::testing::Values(Family::ErdosRenyiAvg8, Family::Random4Regular,
                          Family::Torus, Family::BarabasiAlbert3,
                          Family::GeometricAvg8, Family::RandomTree)),
    [](const ::testing::TestParamInfo<Param>& info) {
      auto clean = [](std::string s) {
        for (char& c : s)
          if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        return s;
      };
      return clean(variant_name(std::get<0>(info.param))) + "_" +
             clean(family_name(std::get<1>(info.param)));
    });

TEST(ConvergenceStats, LargerGraphsTakeOnlyLogarithmicallyLonger) {
  // Direct shape check used by the scaling benches, as a regression test:
  // median T(4096) / median T(64) must be far below the 64x a linear bound
  // would give — the theorems say the ratio is ~ log(4096)/log(64) = 2.
  auto median_rounds = [](std::size_t n) {
    support::SampleSet rounds;
    for (std::uint64_t s = 0; s < 8; ++s) {
      support::Rng grng(s);
      const graph::Graph g = make_family(Family::Random4Regular, n, grng);
      const RunResult r =
          run_variant(g, Variant::GlobalDelta, core::InitPolicy::UniformRandom,
                      s, default_round_budget(n));
      EXPECT_TRUE(r.stabilized);
      rounds.add(static_cast<double>(r.rounds));
    }
    return rounds.median();
  };
  const double t64 = median_rounds(64);
  const double t4096 = median_rounds(4096);
  EXPECT_LT(t4096 / t64, 4.0);
}

}  // namespace
}  // namespace beepmis::exp
