#include "src/core/invariant.hpp"

#include "src/mis/verifier.hpp"

namespace beepmis::core {

obs::InvariantProbeResult probe_invariants(const Engine& engine) {
  const graph::Graph& g = engine.graph();
  obs::InvariantProbeResult r;
  r.stabilized = engine.is_stabilized();
  const std::vector<bool> members = engine.mis_members();
  r.members = mis::member_count(members);
  r.independent = mis::is_independent(g, members);
  r.maximal = mis::is_maximal(g, members);
  const std::size_t n = g.vertex_count();
  for (graph::VertexId v = 0; v < n; ++v) {
    const std::int32_t l = engine.level(v);
    if (l < engine.member_level(v) || l > engine.lmax(v)) {
      r.levels_in_range = false;
      break;
    }
  }
  return r;
}

obs::InvariantProbe make_invariant_probe(const Engine& engine) {
  const Engine* e = &engine;
  return [e]() { return probe_invariants(*e); };
}

}  // namespace beepmis::core
