/// E6 — positioning against prior work (Section 1): rounds-to-MIS of the
/// paper's three variants vs the Afek-style self-stabilizing baseline (needs
/// an upper bound N on n and carries extra log N factors), the JSX original
/// (clean start only), and Luby in the message-passing LOCAL model.
///
/// Two regimes: cold start from arbitrary states (self-stabilizing
/// algorithms only), and clean start (all algorithms).

#include <iostream>

#include "bench/bench_util.hpp"
#include "src/baselines/afek.hpp"
#include "src/baselines/afek_noknow.hpp"
#include "src/baselines/jsx.hpp"
#include "src/baselines/luby.hpp"
#include "src/beep/fault.hpp"
#include "src/exp/families.hpp"
#include "src/exp/runner.hpp"
#include "src/mis/verifier.hpp"
#include "src/support/stats.hpp"
#include "src/support/table.hpp"

namespace {

using namespace beepmis;

support::SampleSet afek_rounds(std::size_t n, bool corrupt,
                               std::uint64_t seeds) {
  support::SampleSet out;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    support::Rng grng(42 + s);
    const graph::Graph g =
        exp::make_family(exp::Family::ErdosRenyiAvg8, n, grng);
    auto algo = std::make_unique<baselines::AfekStyleMis>(g, n);
    auto* a = algo.get();
    beep::Simulation sim(g, std::move(algo), 7 + s);
    if (corrupt) {
      support::Rng crng(90 + s);
      beep::FaultInjector::corrupt_all(sim, crng);
    }
    sim.run_until(
        [&](const beep::Simulation&) { return a->is_stabilized(); },
        200000);
    if (a->is_stabilized()) out.add(static_cast<double>(sim.round()));
  }
  return out;
}

support::SampleSet variant_rounds(std::size_t n, exp::Variant v, bool corrupt,
                                  std::uint64_t seeds) {
  support::SampleSet out;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    support::Rng grng(42 + s);
    const graph::Graph g =
        exp::make_family(exp::Family::ErdosRenyiAvg8, n, grng);
    const auto r = exp::run_variant(
        g, v,
        corrupt ? core::InitPolicy::UniformRandom : core::InitPolicy::Default,
        7 + s, exp::default_round_budget(n));
    if (r.stabilized) out.add(static_cast<double>(r.rounds));
  }
  return out;
}

support::SampleSet afek_noknow_rounds(std::size_t n, std::uint64_t seeds) {
  support::SampleSet out;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    support::Rng grng(42 + s);
    const graph::Graph g =
        exp::make_family(exp::Family::ErdosRenyiAvg8, n, grng);
    auto algo = std::make_unique<baselines::AfekNoKnowledgeMis>(g);
    auto* a = algo.get();
    beep::Simulation sim(g, std::move(algo), 7 + s);
    sim.run_until([&](const beep::Simulation&) { return a->terminated(); },
                  200000);
    if (a->terminated() && mis::is_mis(g, a->mis_members()))
      out.add(static_cast<double>(sim.round()));
  }
  return out;
}

support::SampleSet jsx_rounds(std::size_t n, std::uint64_t seeds) {
  support::SampleSet out;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    support::Rng grng(42 + s);
    const graph::Graph g =
        exp::make_family(exp::Family::ErdosRenyiAvg8, n, grng);
    auto algo = std::make_unique<baselines::JsxMis>(g);
    auto* a = algo.get();
    beep::Simulation sim(g, std::move(algo), 7 + s);
    sim.run_until([&](const beep::Simulation&) { return a->terminated(); },
                  100000);
    if (a->terminated() && mis::is_mis(g, a->mis_members()))
      out.add(static_cast<double>(sim.round()));
  }
  return out;
}

support::SampleSet luby_rounds(std::size_t n, std::uint64_t seeds) {
  support::SampleSet out;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    support::Rng grng(42 + s);
    const graph::Graph g =
        exp::make_family(exp::Family::ErdosRenyiAvg8, n, grng);
    auto algo = std::make_unique<baselines::LubyMis>(g);
    auto* a = algo.get();
    local::LocalSimulation sim(g, std::move(algo), 7 + s);
    while (!a->terminated() && sim.round() < 10000) sim.step();
    if (a->terminated()) out.add(static_cast<double>(sim.round()));
  }
  return out;
}

void emit(support::Table& t, const char* name, const char* model,
          const char* selfstab, std::size_t n, const support::SampleSet& s) {
  t.row().cell(name).cell(model).cell(selfstab).cell(
      static_cast<std::uint64_t>(n));
  if (s.count())
    t.cell(s.median(), 1).cell(s.quantile(0.95), 1);
  else
    t.cell("-").cell("-");
}

}  // namespace

int main() {
  bench::banner(
      "E6: comparison with prior MIS algorithms (Section 1 positioning)",
      "Algorithm 1/2 beat the Afek-style self-stabilizing baseline (extra "
      "log N factors) and match JSX's clean-start O(log n)");

  constexpr std::uint64_t kSeeds = 10;
  const std::size_t sizes[] = {256, 1024, 4096};

  std::printf("\n-- regime A: arbitrary initial state (self-stabilizing only) --\n");
  support::Table ta({"algorithm", "model", "self-stab", "n", "median rounds",
                     "p95"});
  for (std::size_t n : sizes) {
    emit(ta, "V1-global-delta", "beep x1", "yes", n,
         variant_rounds(n, exp::Variant::GlobalDelta, true, kSeeds));
    emit(ta, "V2-own-degree", "beep x1", "yes", n,
         variant_rounds(n, exp::Variant::OwnDegree, true, kSeeds));
    emit(ta, "V3-two-channel", "beep x2", "yes", n,
         variant_rounds(n, exp::Variant::TwoChannel, true, kSeeds));
    emit(ta, "afek-style (knows N)", "beep x1", "yes", n,
         afek_rounds(n, true, kSeeds));
  }
  std::cout << ta.str();

  std::printf("\n-- regime B: clean start (all algorithms) --\n");
  support::Table tb({"algorithm", "model", "self-stab", "n", "median rounds",
                     "p95"});
  for (std::size_t n : sizes) {
    emit(tb, "V1-global-delta", "beep x1", "yes", n,
         variant_rounds(n, exp::Variant::GlobalDelta, false, kSeeds));
    emit(tb, "V2-own-degree", "beep x1", "yes", n,
         variant_rounds(n, exp::Variant::OwnDegree, false, kSeeds));
    emit(tb, "V3-two-channel", "beep x2", "yes", n,
         variant_rounds(n, exp::Variant::TwoChannel, false, kSeeds));
    emit(tb, "afek-style (knows N)", "beep x1", "yes", n,
         afek_rounds(n, false, kSeeds));
    emit(tb, "jsx (original)", "beep x1", "no", n, jsx_rounds(n, kSeeds));
    emit(tb, "afek-noknow (zero knowledge)", "beep x1", "no", n,
         afek_noknow_rounds(n, kSeeds));
    emit(tb, "luby", "LOCAL msgs", "no", n, luby_rounds(n, kSeeds));
  }
  std::cout << tb.str();

  std::printf(
      "\nexpected shape: V1/V3 ~ JSX (the paper preserves JSX's O(log n)); "
      "V2 slightly above;\nafek-style pays an extra O(log N) factor per "
      "competition (phase length scales with log N);\nluby's LOCAL rounds "
      "are fewest but each carries an O(log n)-bit message, not 1 bit.\n");
  return 0;
}
