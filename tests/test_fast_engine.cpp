#include "src/core/fast_engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/beep/network.hpp"
#include "src/core/init.hpp"
#include "src/core/selfstab_mis.hpp"
#include "src/core/selfstab_mis2.hpp"
#include "src/exp/families.hpp"
#include "src/graph/generators.hpp"
#include "src/mis/verifier.hpp"

namespace beepmis::core {
namespace {

/// Reference pair: the generic simulator running SelfStabMis.
struct Reference {
  std::unique_ptr<beep::Simulation> sim;
  SelfStabMis* algo;
};

Reference make_reference(const graph::Graph& g, const LmaxVector& lmax,
                         std::uint64_t seed) {
  auto a = std::make_unique<SelfStabMis>(g, lmax);
  auto* raw = a.get();
  return {std::make_unique<beep::Simulation>(g, std::move(a), seed), raw};
}

TEST(FastEngine, RoundForRoundIdenticalToReferenceSimulator) {
  // The headline equivalence: same seed, same initial levels → identical
  // level vectors after EVERY round, on assorted graphs.
  support::Rng grng(4);
  const auto graphs = {
      graph::make_path(24),   graph::make_star(24),
      graph::make_grid(5, 5), graph::make_erdos_renyi(64, 0.08, grng),
      graph::make_barabasi_albert(64, 3, grng),
  };
  for (const auto& g : graphs) {
    const auto lmax = lmax_global_delta(g);
    auto ref = make_reference(g, lmax, 99);
    FastMisEngine fast(g, lmax, 99);
    // Identical arbitrary starting levels via identical corrupt draws.
    support::Rng c1(7);
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
      ref.algo->corrupt_node(v, c1);
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
      fast.set_level(v, ref.algo->level(v));

    for (int r = 0; r < 400; ++r) {
      ref.sim->step();
      fast.step();
      for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
        ASSERT_EQ(fast.level(v), ref.algo->level(v))
            << g.name() << " round " << r << " vertex " << v;
    }
    EXPECT_EQ(fast.is_stabilized(), ref.algo->is_stabilized()) << g.name();
    EXPECT_EQ(fast.mis_members(), ref.algo->mis_members()) << g.name();
  }
}

TEST(FastEngine, StabilizationRoundCountsMatchReference) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    support::Rng grng(40 + seed);
    const auto g = graph::make_erdos_renyi_avg_degree(128, 8.0, grng);
    const auto lmax = lmax_global_delta(g);
    auto ref = make_reference(g, lmax, seed);
    FastMisEngine fast(g, lmax, seed);
    support::Rng c(seed + 100);
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
      ref.algo->corrupt_node(v, c);
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
      fast.set_level(v, ref.algo->level(v));

    beep::Round ref_rounds = 0;
    while (!ref.algo->is_stabilized() && ref_rounds < 100000) {
      ref.sim->step();
      ++ref_rounds;
    }
    const auto fast_rounds = fast.run_to_stabilization(100000);
    EXPECT_EQ(fast_rounds, ref_rounds) << "seed " << seed;
    EXPECT_TRUE(fast.is_stabilized());
    EXPECT_TRUE(mis::is_mis(g, fast.mis_members()));
  }
}

TEST(FastEngine, ActiveCountShrinksMonotonicallyToZero) {
  support::Rng grng(5);
  const auto g = graph::make_erdos_renyi_avg_degree(256, 8.0, grng);
  FastMisEngine fast(g, lmax_global_delta(g), 3);
  std::size_t prev = fast.active_count();
  EXPECT_EQ(prev, g.vertex_count());
  while (!fast.is_stabilized() && fast.round() < 100000) {
    fast.step();
    EXPECT_LE(fast.active_count(), prev);
    prev = fast.active_count();
  }
  EXPECT_TRUE(fast.is_stabilized());
  EXPECT_EQ(fast.active_count(), 0u);
}

TEST(FastEngine, DetectsPreStabilizedConfigurations) {
  const auto g = graph::make_star(8);
  const auto lmax = lmax_global_delta(g);
  FastMisEngine fast(g, lmax, 1);
  fast.set_level(0, -fast.lmax(0));
  for (graph::VertexId v = 1; v < 8; ++v) fast.set_level(v, fast.lmax(v));
  EXPECT_TRUE(fast.is_stabilized());
  EXPECT_EQ(fast.run_to_stabilization(100), 0u);
  EXPECT_EQ(mis::member_count(fast.mis_members()), 1u);
}

TEST(FastEngine, SettlesVertexReturningToCapNextToOldMember) {
  // Regression for the late-settlement case: stabilize a star, then knock
  // one leaf off its cap; it must re-settle and is_stabilized() recover.
  const auto g = graph::make_star(6);
  const auto lmax = lmax_global_delta(g);
  FastMisEngine fast(g, lmax, 2);
  fast.set_level(0, -fast.lmax(0));
  for (graph::VertexId v = 1; v < 6; ++v) fast.set_level(v, fast.lmax(v));
  ASSERT_TRUE(fast.is_stabilized());
  fast.set_level(3, 2);  // transient fault on one leaf
  EXPECT_FALSE(fast.is_stabilized());
  const auto rounds = fast.run_to_stabilization(1000);
  EXPECT_TRUE(fast.is_stabilized());
  // The member keeps beeping; the leaf climbs back: lmax - 2 rounds.
  EXPECT_EQ(rounds, static_cast<std::uint64_t>(fast.lmax(3) - 2));
}

TEST(FastEngineDeath, BadLmaxRejected) {
  const auto g = graph::make_path(3);
  EXPECT_DEATH(FastMisEngine(g, LmaxVector(3, 1), 1), "at least 2");
  EXPECT_DEATH(FastMisEngine(g, LmaxVector(2, 5), 1), "wrong graph");
}


// --- Algorithm 2 fast engine ---------------------------------------------------

TEST(FastEngine2, RoundForRoundIdenticalToReferenceSimulator) {
  support::Rng grng(9);
  const auto graphs = {
      graph::make_path(24),   graph::make_star(24),
      graph::make_grid(5, 5), graph::make_erdos_renyi(64, 0.08, grng),
  };
  for (const auto& g : graphs) {
    const auto lmax = lmax_one_hop(g);
    auto ref_algo = std::make_unique<SelfStabMisTwoChannel>(g, lmax);
    auto* ref = ref_algo.get();
    beep::Simulation ref_sim(g, std::move(ref_algo), 77);
    FastMisEngine2 fast(g, lmax, 77);
    support::Rng c1(3);
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
      ref->corrupt_node(v, c1);
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
      fast.set_level(v, ref->level(v));

    for (int r = 0; r < 300; ++r) {
      ref_sim.step();
      fast.step();
      for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
        ASSERT_EQ(fast.level(v), ref->level(v))
            << g.name() << " round " << r << " vertex " << v;
    }
    EXPECT_EQ(fast.is_stabilized(), ref->is_stabilized()) << g.name();
    EXPECT_EQ(fast.mis_members(), ref->mis_members()) << g.name();
  }
}

TEST(FastEngine2, StabilizesToValidMis) {
  support::Rng grng(10);
  const auto g = graph::make_barabasi_albert(200, 3, grng);
  FastMisEngine2 fast(g, lmax_one_hop(g), 5);
  support::Rng irng(6);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
    fast.set_level(v, static_cast<std::int32_t>(
                          irng.below(static_cast<std::uint64_t>(fast.lmax(v)) + 1)));
  fast.run_to_stabilization(100000);
  ASSERT_TRUE(fast.is_stabilized());
  EXPECT_TRUE(mis::is_mis(g, fast.mis_members()));
}

TEST(FastEngine2Death, NegativeLevelRejected) {
  const auto g = graph::make_path(3);
  FastMisEngine2 fast(g, LmaxVector(3, 4), 1);
  EXPECT_DEATH(fast.set_level(0, -1), "outside");
}

}  // namespace
}  // namespace beepmis::core
