#include "src/graph/packed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/graph/graph.hpp"
#include "src/support/rng.hpp"

namespace beepmis::graph {
namespace {

/// Expands a vertex's blocked-CSR runs back into a neighbor list.
std::vector<VertexId> unpack_blocks(const PackedGraph& pg, VertexId v) {
  std::vector<VertexId> out;
  for (const PackedGraph::Block& b : pg.blocks(v)) {
    std::uint64_t m = b.mask;
    while (m != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(m));
      out.push_back(b.word * 64 + bit);
      m &= m - 1;
    }
  }
  return out;
}

TEST(PackedGraph, BlocksRoundTripAdjacency) {
  support::Rng grng(31);
  const auto graphs = {
      make_path(10),
      make_star(17),
      make_grid(6, 6),
      make_erdos_renyi_avg_degree(200, 8.0, grng),
  };
  for (const auto& g : graphs) {
    PackedGraph pg(g);
    ASSERT_EQ(pg.vertex_count(), g.vertex_count());
    EXPECT_EQ(pg.word_count(), (g.vertex_count() + 63) / 64);
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      const auto nb = g.neighbors(v);
      const std::vector<VertexId> expect(nb.begin(), nb.end());
      EXPECT_EQ(unpack_blocks(pg, v), expect) << g.name() << " vertex " << v;
      // Blocks are sorted by word and never empty.
      const auto blocks = pg.blocks(v);
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        EXPECT_NE(blocks[i].mask, 0u);
        if (i > 0) EXPECT_LT(blocks[i - 1].word, blocks[i].word);
      }
    }
  }
}

TEST(PackedGraph, BitsetRowsOnlyForDenseGraphs) {
  // Sparse: avg degree 8 on 2048 vertices is far below the ~n/64 = 32
  // threshold (rows need >= 1 neighbor per 64-bit word on average).
  support::Rng grng(32);
  const auto sparse = make_erdos_renyi_avg_degree(2048, 8.0, grng);
  EXPECT_FALSE(PackedGraph(sparse).has_bitset_rows());
  EXPECT_TRUE(PackedGraph(sparse).row(0).empty());

  // Dense: the complete graph always crosses it.
  const auto dense = make_complete(96);
  PackedGraph pg(dense);
  ASSERT_TRUE(pg.has_bitset_rows());
  for (VertexId v = 0; v < dense.vertex_count(); ++v) {
    const auto row = pg.row(v);
    ASSERT_EQ(row.size(), pg.word_count());
    for (VertexId u = 0; u < dense.vertex_count(); ++u) {
      const bool bit = (row[u / 64] >> (u % 64)) & 1u;
      EXPECT_EQ(bit, dense.has_edge(v, u)) << v << "-" << u;
    }
  }
}

TEST(RelabelByDegree, PermutationIsDegreeSortedAndConsistent) {
  support::Rng grng(33);
  const auto g = make_barabasi_albert(150, 3, grng);
  const RelabeledGraph r = relabel_by_degree(g);
  ASSERT_EQ(r.graph.vertex_count(), g.vertex_count());
  EXPECT_EQ(r.graph.edge_count(), g.edge_count());
  // perm and inverse are mutually inverse bijections.
  std::set<VertexId> seen(r.perm.begin(), r.perm.end());
  EXPECT_EQ(seen.size(), g.vertex_count());
  for (VertexId nv = 0; nv < g.vertex_count(); ++nv)
    EXPECT_EQ(r.inverse[r.perm[nv]], nv);
  // New ids are ordered by descending original degree, ties by original id.
  for (VertexId nv = 1; nv < g.vertex_count(); ++nv) {
    const VertexId a = r.perm[nv - 1], b = r.perm[nv];
    EXPECT_TRUE(g.degree(a) > g.degree(b) ||
                (g.degree(a) == g.degree(b) && a < b));
  }
  // Adjacency is preserved under the permutation.
  for (VertexId nv = 0; nv < g.vertex_count(); ++nv) {
    std::vector<VertexId> mapped;
    for (VertexId nu : r.graph.neighbors(nv)) mapped.push_back(r.perm[nu]);
    std::sort(mapped.begin(), mapped.end());
    const auto nb = g.neighbors(r.perm[nv]);
    EXPECT_EQ(mapped, std::vector<VertexId>(nb.begin(), nb.end()));
  }
}

TEST(PackedGraph, HasEdgeMatchesGraphInBothRepresentations) {
  support::Rng grng(34);
  // Sparse (blocked-run probe) and dense (bitset-row probe) sides of the
  // representation switch; probe every pair including non-edges.
  const auto graphs = {make_erdos_renyi_avg_degree(150, 8.0, grng),
                       make_complete_bipartite(40, 56)};
  for (const auto& g : graphs) {
    const PackedGraph pg(g);
    for (VertexId u = 0; u < g.vertex_count(); ++u)
      for (VertexId v = 0; v < g.vertex_count(); ++v)
        ASSERT_EQ(pg.has_edge(u, v), g.has_edge(u, v))
            << g.name() << " " << u << "-" << v;
  }
}

TEST(RelabelByDegree, GoldenPermutationPinsTieBreak) {
  // A caterpillar has massive degree ties (every leaf has degree 1, inner
  // spine vertices tie too), so this pins the stable tie-break by original
  // id: any drift to an unstable sort or a different comparator reshuffles
  // the golden values below.
  const auto g = make_caterpillar(/*spine=*/4, /*legs=*/3);
  // Degrees: spine 0 and 3 have 1 spine edge + 3 legs = 4; spine 1, 2 have
  // 2 spine edges + 3 legs = 5; leaves 4..15 have 1.
  const RelabeledGraph r = relabel_by_degree(g);
  const std::vector<VertexId> golden = {1, 2,  0,  3,  4,  5,  6,  7,
                                        8, 9, 10, 11, 12, 13, 14, 15};
  EXPECT_EQ(r.perm, golden);
  EXPECT_EQ(r.graph.name(), "caterpillar_s4_l3_degord");

  // And a randomized instance stays exactly reproducible end to end.
  support::Rng grng(35);
  const auto ba = make_barabasi_albert(24, 2, grng);
  const RelabeledGraph rb = relabel_by_degree(ba);
  std::vector<VertexId> expect(ba.vertex_count());
  std::iota(expect.begin(), expect.end(), VertexId{0});
  std::stable_sort(expect.begin(), expect.end(),
                   [&](VertexId a, VertexId b) {
                     if (ba.degree(a) != ba.degree(b))
                       return ba.degree(a) > ba.degree(b);
                     return a < b;
                   });
  EXPECT_EQ(rb.perm, expect);
}

}  // namespace
}  // namespace beepmis::graph
