#pragma once

#include <chrono>
#include <cstdint>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace beepmis::obs {

/// RAII region timer: records the scope's wall-clock duration into a
/// TimerStat on destruction. A null target disarms the timer entirely
/// (no clock reads), so instrumented code paths can take an optional
/// registry and stay free when telemetry is off:
///
///   void Engine::refresh() {
///     ScopedTimer t(refresh_timer_);   // TimerStat* cached at set_metrics
///     ...
///   }
class ScopedTimer {
 public:
  /// `digest`, when non-null, additionally receives the duration in
  /// nanoseconds, and `trace_name`, when non-null while a Tracer session is
  /// live, additionally emits a trace span (with `trace_arg` as its numeric
  /// argument when `trace_has_arg`) — one start/stop steady_clock pair
  /// feeds the cumulative TimerStat, the streaming quantile estimate, and
  /// the trace ring buffer. All targets off disarms (no clock reads).
  explicit ScopedTimer(TimerStat* stat, Digest* digest = nullptr,
                       const char* trace_name = nullptr,
                       std::uint64_t trace_arg = 0,
                       bool trace_has_arg = false)
      : stat_(stat),
        digest_(digest),
        trace_name_(trace_name != nullptr && Tracer::active() ? trace_name
                                                              : nullptr),
        trace_arg_(trace_arg),
        trace_has_arg_(trace_has_arg) {
    if (stat_ != nullptr || digest_ != nullptr || trace_name_ != nullptr)
      start_ = std::chrono::steady_clock::now();
  }
  /// Convenience: look the timer up by name; `registry` may be null. The
  /// same name doubles as the trace span name (a string literal at every
  /// call site, so the no-copy tracer contract holds).
  ScopedTimer(MetricsRegistry* registry, const char* name)
      : ScopedTimer(registry != nullptr ? &registry->timer(name) : nullptr,
                    nullptr, name) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (stat_ == nullptr && digest_ == nullptr && trace_name_ == nullptr)
      return;
    const auto end = std::chrono::steady_clock::now();
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count());
    if (stat_ != nullptr) stat_->record_ns(ns);
    if (digest_ != nullptr) digest_->add(static_cast<double>(ns));
    if (trace_name_ != nullptr)
      Tracer::complete(trace_name_, start_, end, trace_arg_, trace_has_arg_);
  }

 private:
  TimerStat* stat_;
  Digest* digest_;
  const char* trace_name_;
  std::uint64_t trace_arg_;
  bool trace_has_arg_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace beepmis::obs
