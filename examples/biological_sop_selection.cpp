/// Biological scenario: sensory organ precursor (SOP) selection in the fly
/// nervous system (Afek et al., Science 2011 — reference [2] of the paper).
/// Proneural cells inhibit their neighbors via Delta–Notch signalling; the
/// selected SOPs form exactly an MIS of the cell-contact graph. Signalling
/// carries ~1 bit ("a neighbor is protesting") — the beeping model.
///
/// We model the epithelium as a hexagonal-ish contact lattice (torus) and
/// use the two-channel variant (Algorithm 2): channel 1 is the transient
/// inhibition signal, channel 2 the sustained Delta expression of a
/// committed SOP. Cell state resets (de-differentiation) are transient
/// faults; the tissue re-patterns around them.

#include <cstdio>

#include "src/beep/fault.hpp"
#include "src/beep/network.hpp"
#include "src/core/lmax.hpp"
#include "src/core/selfstab_mis2.hpp"
#include "src/graph/generators.hpp"
#include "src/mis/verifier.hpp"

namespace {

void draw_tissue(const beepmis::graph::Graph& g,
                 const std::vector<bool>& sop, std::size_t rows,
                 std::size_t cols) {
  (void)g;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c)
      std::printf("%c", sop[r * cols + c] ? '*' : '.');
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace beepmis;

  constexpr std::size_t kRows = 16, kCols = 32;
  const graph::Graph g = graph::make_grid(kRows, kCols, /*torus=*/true);
  std::printf("epithelium: %zux%zu cells (torus contact lattice)\n\n", kRows,
              kCols);

  // Cells know the max degree in their contact neighborhood (Cor 2.3).
  auto algo = std::make_unique<core::SelfStabMisTwoChannel>(
      g, core::lmax_one_hop(g), core::Knowledge::OneHopMaxDegree);
  auto* a = algo.get();
  beep::Simulation sim(g, std::move(algo), /*seed=*/3);

  // Undifferentiated tissue = arbitrary internal states.
  support::Rng chaos(11);
  beep::FaultInjector::corrupt_all(sim, chaos);

  sim.run_until(
      [&](const beep::Simulation&) { return a->is_stabilized(); }, 100000);
  auto sop = a->mis_members();
  std::printf("patterned after %llu signalling rounds; %zu SOPs, valid MIS: %s\n",
              static_cast<unsigned long long>(sim.round()),
              mis::member_count(sop), mis::is_mis(g, sop) ? "yes" : "NO");
  draw_tissue(g, sop, kRows, kCols);

  // Laser-ablate a patch of cells: their neighbors must re-pattern.
  std::printf("\n** ablating a 6x6 patch (de-differentiation) **\n");
  std::vector<graph::VertexId> patch;
  for (std::size_t r = 4; r < 10; ++r)
    for (std::size_t c = 10; c < 16; ++c)
      patch.push_back(static_cast<graph::VertexId>(r * kCols + c));
  beep::FaultInjector::corrupt_nodes(sim, patch, chaos);

  const auto before = sim.round();
  sim.run_until(
      [&](const beep::Simulation&) { return a->is_stabilized(); }, 100000);
  sop = a->mis_members();
  std::printf("re-patterned in %llu rounds; %zu SOPs, valid MIS: %s\n",
              static_cast<unsigned long long>(sim.round() - before),
              mis::member_count(sop), mis::is_mis(g, sop) ? "yes" : "NO");
  draw_tissue(g, sop, kRows, kCols);
  return mis::is_mis(g, sop) ? 0 : 1;
}
