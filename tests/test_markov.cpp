#include "src/exact/markov.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/beep/network.hpp"
#include "src/core/selfstab_mis.hpp"
#include "src/core/selfstab_mis2.hpp"
#include "src/graph/generators.hpp"
#include "src/support/stats.hpp"

namespace beepmis::exact {
namespace {

TEST(Markov, StateEncodingRoundTrip) {
  const auto g = graph::make_path(3);
  MarkovAnalysis m(g, core::LmaxVector{2, 3, 2});
  EXPECT_EQ(m.state_count(), 5u * 7u * 5u);
  for (std::size_t s = 0; s < m.state_count(); ++s)
    EXPECT_EQ(m.encode(m.decode(s)), s);
}

TEST(Markov, AbsorbingStatesMatchStabilityPredicate) {
  const auto g = graph::make_path(2);
  MarkovAnalysis m(g, core::LmaxVector{2, 2});
  std::size_t absorbing = 0;
  for (std::size_t s = 0; s < m.state_count(); ++s) {
    const auto levels = m.decode(s);
    core::SelfStabMis a(g, core::LmaxVector{2, 2});
    a.set_level(0, levels[0]);
    a.set_level(1, levels[1]);
    EXPECT_EQ(m.is_absorbing(s), a.is_stabilized()) << s;
    absorbing += m.is_absorbing(s);
  }
  // P2's stable configurations: (-2, 2) and (2, -2).
  EXPECT_EQ(absorbing, 2u);
}

TEST(Markov, TransitionProbabilitiesSumToOne) {
  const auto g = graph::make_complete(3);
  MarkovAnalysis m(g, core::LmaxVector{2, 2, 2});
  for (std::size_t s = 0; s < m.state_count(); ++s) {
    const auto dist = m.distribution_after(s, 1);
    double total = 0.0;
    for (double p : dist) total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Markov, AbsorptionReachableFromEveryState) {
  // Exhaustive qualitative self-stabilization on several tiny graphs.
  for (const auto& g : {graph::make_path(2), graph::make_path(3),
                        graph::make_complete(3), graph::make_star(4)}) {
    MarkovAnalysis m(g, core::LmaxVector(g.vertex_count(), 2));
    EXPECT_TRUE(m.absorption_reachable_from_everywhere()) << g.name();
  }
}

TEST(Markov, AbsorbingStatesAreFixedPoints) {
  const auto g = graph::make_star(3);
  MarkovAnalysis m(g, core::LmaxVector{2, 2, 2});
  for (std::size_t s = 0; s < m.state_count(); ++s) {
    if (!m.is_absorbing(s)) continue;
    const auto dist = m.distribution_after(s, 5);
    EXPECT_NEAR(dist[s], 1.0, 1e-12);
  }
}

TEST(Markov, SingleVertexHittingTimeClosedForm) {
  // Isolated vertex, lmax = 2. From ℓ=1 it beeps w.p. 1/2 (→ absorbed at
  // -2 next round via beep-alone) else decays to max(0,1)=1... wait: silent
  // and hears nothing → max(ℓ-1, 1) = 1 — stays. So h(1) satisfies
  // h = 1 + (1/2)·0 + (1/2)·h  ⇒  h = 2.
  const auto g = graph::GraphBuilder(1).build();
  MarkovAnalysis m(g, core::LmaxVector{2});
  auto& h = m.expected_absorption_rounds();
  EXPECT_NEAR(h[m.encode({1})], 2.0, 1e-9);
  // From ℓ=0 (beeps with certainty): absorbed in exactly 1 round.
  EXPECT_NEAR(h[m.encode({0})], 1.0, 1e-9);
  // From ℓ=2 = lmax (silent): decays to 1, then as above: 1 + 2 = 3.
  EXPECT_NEAR(h[m.encode({2})], 3.0, 1e-9);
  // From ℓ=-2: already absorbed.
  EXPECT_NEAR(h[m.encode({-2})], 0.0, 1e-9);
}

TEST(Markov, SimulatorMatchesExactHittingTimes) {
  // The headline cross-validation: Monte-Carlo mean stabilization times
  // from the REAL simulator must match the chain's closed-form expectation
  // within sampling error, for several graphs and start states.
  struct Case {
    graph::Graph g;
    std::vector<std::int32_t> start;
  };
  std::vector<Case> cases;
  cases.push_back({graph::make_path(2), {1, 1}});
  cases.push_back({graph::make_path(2), {-2, -2}});
  cases.push_back({graph::make_complete(3), {1, 1, 1}});
  cases.push_back({graph::make_path(3), {2, 2, 2}});

  for (const auto& c : cases) {
    MarkovAnalysis m(c.g, core::LmaxVector(c.g.vertex_count(), 2));
    auto& h = m.expected_absorption_rounds();
    const double exact = h[m.encode(c.start)];

    support::RunningStats sim_rounds;
    constexpr int kTrials = 4000;
    for (int trial = 0; trial < kTrials; ++trial) {
      auto algo = std::make_unique<core::SelfStabMis>(
          c.g, core::LmaxVector(c.g.vertex_count(), 2));
      auto* a = algo.get();
      beep::Simulation sim(c.g, std::move(algo),
                           static_cast<std::uint64_t>(trial) * 7919 + 13);
      for (graph::VertexId v = 0; v < c.g.vertex_count(); ++v)
        a->set_level(v, c.start[v]);
      sim.run_until(
          [&](const beep::Simulation&) { return a->is_stabilized(); }, 100000);
      sim_rounds.add(static_cast<double>(sim.round()));
    }
    // 5-sigma band around the exact expectation.
    const double sigma = sim_rounds.stddev() / std::sqrt(double(kTrials));
    EXPECT_NEAR(sim_rounds.mean(), exact, 5.0 * sigma + 1e-6)
        << c.g.name() << " exact=" << exact << " sim=" << sim_rounds.mean();
  }
}

TEST(Markov, DistributionMassFlowsToAbsorbing) {
  const auto g = graph::make_path(2);
  MarkovAnalysis m(g, core::LmaxVector{2, 2});
  const auto start = m.encode({1, 1});
  double absorbed_prev = 0.0;
  for (std::uint64_t r : {1ull, 3ull, 6ull, 12ull, 25ull}) {
    const auto dist = m.distribution_after(start, r);
    double absorbed = 0.0;
    for (std::size_t s = 0; s < m.state_count(); ++s)
      if (m.is_absorbing(s)) absorbed += dist[s];
    EXPECT_GE(absorbed, absorbed_prev);
    absorbed_prev = absorbed;
  }
  EXPECT_GT(absorbed_prev, 0.99);  // w.h.p. absorbed after 25 rounds
}

TEST(Markov, SingleVertexVarianceClosedForm) {
  // Isolated vertex, lmax = 2, start l=1: T is geometric(1/2), so
  // E[T] = 2, E[T^2] = E[T(T+... )] — for geometric(p): Var = (1-p)/p^2 = 2,
  // E[T^2] = Var + E[T]^2 = 6.
  const auto g = graph::GraphBuilder(1).build();
  MarkovAnalysis m(g, core::LmaxVector{2});
  auto& h2 = m.expected_absorption_rounds_squared();
  EXPECT_NEAR(h2[m.encode({1})], 6.0, 1e-6);
  EXPECT_NEAR(h2[m.encode({0})], 1.0, 1e-6);   // deterministic 1 round
  EXPECT_NEAR(h2[m.encode({-2})], 0.0, 1e-9);  // absorbed
  // l=2: T = 1 + T(1) deterministically shifted: E=3, Var unchanged = 2,
  // E[T^2] = 2 + 9 = 11.
  EXPECT_NEAR(h2[m.encode({2})], 11.0, 1e-6);
}

TEST(Markov, SimulatedStdMatchesExactStd) {
  const auto g = graph::make_complete(3);
  MarkovAnalysis m(g, core::LmaxVector{2, 2, 2});
  const auto start = m.encode({1, 1, 1});
  auto& h = m.expected_absorption_rounds();
  auto& h2 = m.expected_absorption_rounds_squared();
  const double exact_std = std::sqrt(h2[start] - h[start] * h[start]);

  support::RunningStats stats;
  constexpr int kTrials = 6000;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto algo = std::make_unique<core::SelfStabMis>(g, core::LmaxVector{2, 2, 2});
    auto* a = algo.get();
    beep::Simulation sim(g, std::move(algo),
                         static_cast<std::uint64_t>(trial) * 3671 + 11);
    sim.run_until(
        [&](const beep::Simulation&) { return a->is_stabilized(); }, 100000);
    stats.add(static_cast<double>(sim.round()));
  }
  // Sample std of ~6000 draws is within a few percent of the truth.
  EXPECT_NEAR(stats.stddev(), exact_std, 0.1 * exact_std + 0.05);
}

TEST(Markov, AbsorptionProbabilitiesSumToOneAndConcentrateOnAbsorbing) {
  const auto g = graph::make_path(3);
  MarkovAnalysis m(g, core::LmaxVector{2, 2, 2});
  for (std::size_t s = 0; s < m.state_count(); s += 17) {
    const auto probs = m.absorption_probabilities(s);
    double total = 0.0;
    for (std::size_t t = 0; t < m.state_count(); ++t) {
      if (!m.is_absorbing(t)) {
        EXPECT_EQ(probs[t], 0.0);
      }
      total += probs[t];
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Markov, SymmetricStartSplitsEvenlyOnP2) {
  // P2 from (1,1) is symmetric under vertex swap: the two absorbing states
  // (-2,2) and (2,-2) must be hit with probability 1/2 each.
  const auto g = graph::make_path(2);
  MarkovAnalysis m(g, core::LmaxVector{2, 2});
  const auto probs = m.absorption_probabilities(m.encode({1, 1}));
  EXPECT_NEAR(probs[m.encode({-2, 2})], 0.5, 1e-9);
  EXPECT_NEAR(probs[m.encode({2, -2})], 0.5, 1e-9);
}

TEST(Markov, WhichMisSelectedMatchesSimulationOnP3) {
  // P3 has two MISes: {middle} and {both ends}. Compare the exact selection
  // probability from (1,1,1) with simulated frequencies.
  const auto g = graph::make_path(3);
  MarkovAnalysis m(g, core::LmaxVector{2, 2, 2});
  const auto probs = m.absorption_probabilities(m.encode({1, 1, 1}));
  const double exact_middle = probs[m.encode({2, -2, 2})];
  EXPECT_GT(exact_middle, 0.05);
  EXPECT_LT(exact_middle, 0.95);

  int middle_wins = 0;
  constexpr int kTrials = 8000;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto algo = std::make_unique<core::SelfStabMis>(g, core::LmaxVector{2, 2, 2});
    auto* a = algo.get();
    beep::Simulation sim(g, std::move(algo),
                         static_cast<std::uint64_t>(trial) * 2713 + 5);
    sim.run_until(
        [&](const beep::Simulation&) { return a->is_stabilized(); }, 100000);
    middle_wins += a->mis_members()[1];
  }
  const double p = exact_middle;
  const double sigma = std::sqrt(kTrials * p * (1 - p));
  EXPECT_NEAR(middle_wins, kTrials * p, 5 * sigma);
}

TEST(Markov, AbsorptionProbabilityOfAbsorbingStateIsItself) {
  const auto g = graph::make_path(2);
  MarkovAnalysis m(g, core::LmaxVector{2, 2});
  const auto a = m.encode({-2, 2});
  const auto probs = m.absorption_probabilities(a);
  EXPECT_NEAR(probs[a], 1.0, 1e-12);
}

// --- Algorithm 2 chain -------------------------------------------------------

TEST(MarkovAlgo2, StateSpaceUsesNonNegativeLevels) {
  const auto g = graph::make_path(2);
  MarkovAnalysis m(g, core::LmaxVector{3, 3}, Chain::Algorithm2);
  EXPECT_EQ(m.state_count(), 4u * 4u);
  for (std::size_t s = 0; s < m.state_count(); ++s) {
    const auto levels = m.decode(s);
    for (auto l : levels) {
      EXPECT_GE(l, 0);
      EXPECT_LE(l, 3);
    }
    EXPECT_EQ(m.encode(levels), s);
  }
}

TEST(MarkovAlgo2, AbsorbingStatesMatchAlgorithm2Predicate) {
  const auto g = graph::make_path(2);
  MarkovAnalysis m(g, core::LmaxVector{3, 3}, Chain::Algorithm2);
  std::size_t absorbing = 0;
  for (std::size_t s = 0; s < m.state_count(); ++s) {
    const auto levels = m.decode(s);
    core::SelfStabMisTwoChannel a(g, core::LmaxVector{3, 3});
    a.set_level(0, levels[0]);
    a.set_level(1, levels[1]);
    EXPECT_EQ(m.is_absorbing(s), a.is_stabilized()) << s;
    absorbing += m.is_absorbing(s);
  }
  EXPECT_EQ(absorbing, 2u);  // (0, 3) and (3, 0)
}

TEST(MarkovAlgo2, AbsorptionReachableFromEveryState) {
  for (const auto& g : {graph::make_path(3), graph::make_complete(3),
                        graph::make_star(4)}) {
    MarkovAnalysis m(g, core::LmaxVector(g.vertex_count(), 2),
                     Chain::Algorithm2);
    EXPECT_TRUE(m.absorption_reachable_from_everywhere()) << g.name();
  }
}

TEST(MarkovAlgo2, SimulatorMatchesExactHittingTimes) {
  const auto g = graph::make_path(2);
  MarkovAnalysis m(g, core::LmaxVector{2, 2}, Chain::Algorithm2);
  auto& h = m.expected_absorption_rounds();
  const std::vector<std::int32_t> start = {1, 1};
  const double exact = h[m.encode(start)];

  support::RunningStats sim_rounds;
  constexpr int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto algo = std::make_unique<core::SelfStabMisTwoChannel>(
        g, core::LmaxVector{2, 2});
    auto* a = algo.get();
    beep::Simulation sim(g, std::move(algo),
                         static_cast<std::uint64_t>(trial) * 6151 + 3);
    a->set_level(0, 1);
    a->set_level(1, 1);
    sim.run_until(
        [&](const beep::Simulation&) { return a->is_stabilized(); }, 100000);
    sim_rounds.add(static_cast<double>(sim.round()));
  }
  const double sigma = sim_rounds.stddev() / std::sqrt(double(kTrials));
  EXPECT_NEAR(sim_rounds.mean(), exact, 5.0 * sigma + 1e-6)
      << "exact=" << exact;
}

TEST(MarkovDeath, TooLargeInstanceRejected) {
  const auto g = graph::make_cycle(12);
  EXPECT_DEATH(MarkovAnalysis(g, core::LmaxVector(12, 2)), "tiny graphs");
}

}  // namespace
}  // namespace beepmis::exact
