/// E4 — the self-stabilization property itself (Sec 1.1 fault model): after
/// transient RAM corruption of k nodes in a stabilized network, how many
/// fault-free rounds until the configuration is legal again?
///
/// The paper's definition gives re-stabilization within the same O(·) bounds
/// as cold-start (a fault is just another arbitrary configuration); locality
/// of the algorithm should make small faults much cheaper than full restarts.

#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/beep/fault.hpp"
#include "src/exp/families.hpp"
#include "src/exp/runner.hpp"
#include "src/support/stats.hpp"
#include "src/support/table.hpp"

int main() {
  using namespace beepmis;
  bench::banner("E4: recovery time after transient faults of size k",
                "re-stabilization within the cold-start bound; local faults "
                "recover faster");

  constexpr std::size_t kN = 4096;
  constexpr std::size_t kSeeds = 15;
  // 1, 8, √n = 64, n/16, n/2, n — distinct sizes spanning local to global.
  const std::size_t fault_sizes[] = {1, 8,
                                     static_cast<std::size_t>(std::sqrt(kN)),
                                     kN / 16, kN / 2, kN};

  support::Table t({"variant", "k (faulted nodes)", "median recovery",
                    "p95 recovery", "max", "cold-start median"});

  for (exp::Variant variant :
       {exp::Variant::GlobalDelta, exp::Variant::OwnDegree,
        exp::Variant::TwoChannel}) {
    // Cold-start reference distribution.
    support::SampleSet cold;
    for (std::size_t s = 0; s < kSeeds; ++s) {
      support::Rng grng(1000 + s);
      const auto g = exp::make_family(exp::Family::ErdosRenyiAvg8, kN, grng);
      const auto r = exp::run_variant(g, variant,
                                      core::InitPolicy::UniformRandom,
                                      2000 + s, exp::default_round_budget(kN));
      cold.add(static_cast<double>(r.rounds));
    }

    for (std::size_t k : fault_sizes) {
      support::SampleSet rec;
      for (std::size_t s = 0; s < kSeeds; ++s) {
        support::Rng grng(1000 + s);
        const auto g =
            exp::make_family(exp::Family::ErdosRenyiAvg8, kN, grng);
        auto sim = exp::make_selfstab_sim(g, variant, 2000 + s);
        auto r0 =
            exp::run_to_stabilization(*sim, exp::default_round_budget(kN));
        if (!r0.stabilized) continue;
        support::Rng frng(3000 + s);
        beep::FaultInjector::corrupt_random(*sim, k, frng);
        const auto r =
            exp::run_to_stabilization(*sim, exp::default_round_budget(kN));
        if (r.stabilized) rec.add(static_cast<double>(r.rounds));
      }
      t.row()
          .cell(exp::variant_name(variant))
          .cell(static_cast<std::uint64_t>(k))
          .cell(rec.median(), 1)
          .cell(rec.quantile(0.95), 1)
          .cell(rec.max(), 0)
          .cell(cold.median(), 1);
    }
  }
  std::cout << t.str();
  std::printf(
      "\nexpected shape: recovery grows with k and approaches the cold-start "
      "median at k = n;\nsingle-node faults recover in O(lmax)-ish time.\n");
  return 0;
}
