#include "src/graph/io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/graph/generators.hpp"

namespace beepmis::graph {
namespace {

TEST(GraphIo, EdgeListRoundTrip) {
  support::Rng rng(1);
  const Graph g = make_erdos_renyi(100, 0.05, rng);
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph h = read_edge_list(ss, "reloaded");
  ASSERT_EQ(h.vertex_count(), g.vertex_count());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  EXPECT_EQ(h.name(), "reloaded");
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const auto a = g.neighbors(v), b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIo, EmptyGraphRoundTrip) {
  std::stringstream ss;
  write_edge_list(GraphBuilder(3).build(), ss);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.vertex_count(), 3u);
  EXPECT_EQ(h.edge_count(), 0u);
}

TEST(GraphIoDeath, TruncatedInputAborts) {
  std::stringstream ss("5 3\n0 1\n");
  EXPECT_DEATH(read_edge_list(ss), "truncated");
}

TEST(GraphIoDeath, BadHeaderAborts) {
  std::stringstream ss("not-a-number");
  EXPECT_DEATH(read_edge_list(ss), "bad header");
}

TEST(GraphIo, DotOutputContainsAllEdges) {
  const Graph g = make_cycle(4);
  std::stringstream ss;
  write_dot(g, ss);
  const std::string s = ss.str();
  EXPECT_NE(s.find("graph"), std::string::npos);
  EXPECT_NE(s.find("0 -- 1"), std::string::npos);
  EXPECT_NE(s.find("0 -- 3"), std::string::npos);
  // Each edge appears exactly once.
  EXPECT_EQ(s.find("1 -- 0"), std::string::npos);
}


TEST(GraphIo, DimacsRoundTrip) {
  support::Rng rng(3);
  const Graph g = make_erdos_renyi(80, 0.06, rng);
  std::stringstream ss;
  write_dimacs(g, ss);
  const Graph h = read_dimacs(ss, "rt");
  ASSERT_EQ(h.vertex_count(), g.vertex_count());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const auto a = g.neighbors(v), b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIo, DimacsToleratesCommentsAndColKind) {
  std::stringstream ss(
      "c a comment\np col 3 2\nc another\ne 1 2\ne 2 3\n");
  const Graph g = read_dimacs(ss);
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphIo, PackedRoundTrip) {
  // Through the streaming generator, as graphgen --stream-out writes it,
  // compared against the in-memory builder's graph after the round trip.
  support::Rng rng(9);
  const Graph built = make_erdos_renyi_avg_degree(300, 8.0, rng);
  const Graph streamed =
      make_erdos_renyi_avg_degree_stream(300, 8.0, support::Rng(9));
  std::stringstream ss;
  write_packed(streamed, ss);
  const Graph h = read_packed(ss);
  ASSERT_EQ(h.vertex_count(), built.vertex_count());
  ASSERT_EQ(h.edge_count(), built.edge_count());
  EXPECT_EQ(h.name(), built.name());
  EXPECT_EQ(h.max_degree(), built.max_degree());
  for (VertexId v = 0; v < built.vertex_count(); ++v) {
    const auto a = built.neighbors(v), b = h.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "vertex " << v;
  }
}

TEST(GraphIo, PackedRenameAndEmptyGraph) {
  std::stringstream ss;
  write_packed(GraphBuilder(5, "tiny").build(), ss);
  const Graph h = read_packed(ss, "renamed");
  EXPECT_EQ(h.vertex_count(), 5u);
  EXPECT_EQ(h.edge_count(), 0u);
  EXPECT_EQ(h.name(), "renamed");
}

TEST(GraphIoDeath, PackedMalformedInputsAbort) {
  {
    std::stringstream ss("definitely not packed");
    EXPECT_DEATH(read_packed(ss), "bad magic");
  }
  {
    const Graph g = make_cycle(6);
    std::stringstream ss;
    write_packed(g, ss);
    std::string bytes = ss.str();
    bytes.resize(bytes.size() - 4);  // drop the last adjacency entry
    std::stringstream truncated(bytes);
    EXPECT_DEATH(read_packed(truncated), "truncated");
  }
}

TEST(GraphIoDeath, DimacsMalformedInputsAbort) {
  {
    std::stringstream ss("e 1 2\n");
    EXPECT_DEATH(read_dimacs(ss), "before p line");
  }
  {
    std::stringstream ss("p edge 2 1\ne 1 3\n");
    EXPECT_DEATH(read_dimacs(ss), "out of range");
  }
  {
    std::stringstream ss("p edge 2 2\ne 1 2\n");
    EXPECT_DEATH(read_dimacs(ss), "edge count mismatch");
  }
  {
    std::stringstream ss("q what 1 1\n");
    EXPECT_DEATH(read_dimacs(ss), "unknown record");
  }
}

}  // namespace
}  // namespace beepmis::graph
