#pragma once

#include <cstdint>
#include <vector>

#include "src/beep/network.hpp"
#include "src/beep/types.hpp"

namespace beepmis::beep {

/// Per-round observation of a simulation, recorded by Trace.
struct RoundRecord {
  Round round = 0;
  std::uint32_t beeps_ch1 = 0;  ///< nodes that beeped on channel 1
  std::uint32_t beeps_ch2 = 0;  ///< nodes that beeped on channel 2
  std::uint32_t heard_ch1 = 0;  ///< nodes that heard a beep on channel 1
  std::uint32_t heard_ch2 = 0;  ///< nodes that heard a beep on channel 2
  std::uint32_t heard_any = 0;  ///< nodes that heard on at least one channel
};

/// Opt-in per-round telemetry. Call observe(sim) after each Simulation::step.
/// Costs O(n) per observation; big sweeps skip it, lemma/communication
/// experiments use it. For streaming/structured output, prefer attaching an
/// obs::JsonlSink via Simulation::add_observer — this class remains for
/// in-memory inspection.
class Trace {
 public:
  void observe(const Simulation& sim);

  const std::vector<RoundRecord>& records() const noexcept { return records_; }
  void clear() { records_.clear(); }

  /// Total beeps over all recorded rounds, summed across BOTH channels
  /// (ch1 + ch2) — the model's energy measure. On a two-channel run this
  /// therefore exceeds the channel-1 count alone.
  std::uint64_t total_beeps() const noexcept;

 private:
  std::vector<RoundRecord> records_;
};

}  // namespace beepmis::beep
