#include "src/beep/fault.hpp"

#include <algorithm>

#include "src/obs/recovery.hpp"
#include "src/support/check.hpp"

namespace beepmis::beep {

std::vector<graph::VertexId> FaultInjector::corrupt_random(
    Simulation& sim, std::size_t count, support::Rng& rng,
    obs::RecoveryTracker* recovery) {
  const std::size_t n = sim.graph().vertex_count();
  BEEPMIS_CHECK(count <= n, "cannot corrupt more nodes than exist");
  // Floyd's algorithm for a uniform k-subset without building [0, n).
  std::vector<graph::VertexId> chosen;
  chosen.reserve(count);
  for (std::size_t j = n - count; j < n; ++j) {
    const auto t = static_cast<graph::VertexId>(rng.below(j + 1));
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end())
      chosen.push_back(t);
    else
      chosen.push_back(static_cast<graph::VertexId>(j));
  }
  corrupt_nodes(sim, chosen, rng);
  if (recovery != nullptr)
    recovery->on_fault(sim.round(), "corrupt-random", chosen.size());
  return chosen;
}

void FaultInjector::corrupt_nodes(Simulation& sim,
                                  std::span<const graph::VertexId> nodes,
                                  support::Rng& rng,
                                  obs::RecoveryTracker* recovery) {
  for (graph::VertexId v : nodes) sim.algorithm().corrupt_node(v, rng);
  if (recovery != nullptr)
    recovery->on_fault(sim.round(), "corrupt-nodes", nodes.size());
}

void FaultInjector::corrupt_all(Simulation& sim, support::Rng& rng,
                                obs::RecoveryTracker* recovery) {
  const std::size_t n = sim.graph().vertex_count();
  for (graph::VertexId v = 0; v < n; ++v)
    sim.algorithm().corrupt_node(v, rng);
  if (recovery != nullptr)
    recovery->on_fault(sim.round(), "corrupt-all", n);
}

}  // namespace beepmis::beep
