#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "src/beep/types.hpp"
#include "src/graph/graph.hpp"
#include "src/obs/sink.hpp"
#include "src/support/rng.hpp"

namespace beepmis::beep {

/// A distributed algorithm in the (full-duplex, collision-detecting) beeping
/// model, stored struct-of-arrays: one object holds the local state of every
/// node of the run.
///
/// The model's weakness is enforced by this interface: per round the engine
/// asks each node for a beep decision (decide_beeps) and then tells it, per
/// channel, only *whether at least one neighbor beeped* (receive_feedback).
/// A node never sees neighbor identities, counts, or payloads. Implementations
/// must compute node v's decision from node v's state alone — the SoA layout
/// is a performance choice, not a license for global coordination.
///
/// The fault model (Sec 1.1 of the paper) maps onto this class as: the
/// mutable arrays are RAM (corruptible via corrupt_node), everything set at
/// construction (graph knowledge such as lmax, the code itself) is ROM.
class BeepingAlgorithm {
 public:
  virtual ~BeepingAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Number of beeping channels the algorithm uses (1 or 2).
  virtual unsigned channels() const = 0;

  virtual std::size_t node_count() const = 0;

  /// Phase 1 of round `round`: fill send[v] with node v's channel mask.
  /// rngs[v] is node v's private randomness stream.
  virtual void decide_beeps(Round round, std::span<support::Rng> rngs,
                            std::span<ChannelMask> send) = 0;

  /// Phase 2: heard[v] has bit k set iff some *neighbor* of v beeped on
  /// channel k (full-duplex: v's own beep is not echoed back). sent[v] is
  /// v's own decision from phase 1. Update node states.
  virtual void receive_feedback(Round round, std::span<const ChannelMask> sent,
                                std::span<const ChannelMask> heard) = 0;

  /// Transient fault: overwrite node v's RAM with arbitrary (uniformly
  /// random, in-representable-range) values. Self-stabilization must hold
  /// from any reachable-by-corruption state.
  virtual void corrupt_node(graph::VertexId v, support::Rng& rng) = 0;

  /// Telemetry hook: fill the algorithm-level fields of a per-round event
  /// (prominent/stable/mis/active and — when `with_analysis` — the paper's
  /// analysis quantities). Called by the simulation after each round when
  /// observers are attached; the communication fields are already set.
  /// Default: leave everything zero (baselines without these notions).
  virtual void fill_round_event(obs::RoundEvent& event,
                                bool with_analysis) const {
    (void)event;
    (void)with_analysis;
  }
};

}  // namespace beepmis::beep
