#pragma once

#include <cstdint>
#include <vector>

#include "src/beep/algorithm.hpp"
#include "src/core/lmax.hpp"
#include "src/graph/graph.hpp"

namespace beepmis::core {

/// Algorithm 1 of the paper: the self-stabilizing variant of Jeavons, Scott
/// and Xu's beeping MIS algorithm (single channel).
///
/// Per-node RAM is exactly one integer, the level ℓ(v) ∈ [-ℓmax(v), ℓmax(v)].
/// Level determines the beeping probability
///
///     p(v) = 1          if ℓ(v) ≤ 0
///     p(v) = 2^{-ℓ(v)}  if 0 < ℓ(v) < ℓmax(v)
///     p(v) = 0          if ℓ(v) = ℓmax(v)
///
/// and each round updates
///
///     heard a beep                   → ℓ ← min(ℓ+1, ℓmax)
///     beeped and heard nothing       → ℓ ← -ℓmax   (claims an MIS slot)
///     silent and heard nothing       → ℓ ← max(ℓ-1, 1)
///
/// A vertex is an MIS member (set I_t of the paper) iff ℓ(v) = -ℓmax(v) and
/// every neighbor sits at its own cap: such a vertex beeps forever and its
/// neighbors hear it forever, so fault-free executions never leave the state
/// — and any corruption is detected because the configuration stops being
/// self-reinforcing.
///
/// ℓmax(v) is construction-time (ROM). The three theorems correspond to the
/// three LmaxVector policies in lmax.hpp.
class SelfStabMis : public beep::BeepingAlgorithm {
 public:
  SelfStabMis(const graph::Graph& g, LmaxVector lmax,
              Knowledge knowledge = Knowledge::Custom);

  // --- BeepingAlgorithm ------------------------------------------------
  std::string name() const override;
  unsigned channels() const override { return 1; }
  std::size_t node_count() const override { return levels_.size(); }
  void decide_beeps(beep::Round round, std::span<support::Rng> rngs,
                    std::span<beep::ChannelMask> send) override;
  void receive_feedback(beep::Round round,
                        std::span<const beep::ChannelMask> sent,
                        std::span<const beep::ChannelMask> heard) override;
  void corrupt_node(graph::VertexId v, support::Rng& rng) override;
  void fill_round_event(obs::RoundEvent& event,
                        bool with_analysis) const override;

  // --- State access (simulation/verification side) ---------------------
  std::int32_t level(graph::VertexId v) const { return levels_[v]; }
  std::int32_t lmax(graph::VertexId v) const { return lmax_[v]; }
  Knowledge knowledge() const noexcept { return knowledge_; }

  /// Sets ℓ(v); aborts if outside [-ℓmax(v), ℓmax(v)]. Used by initial-state
  /// policies and targeted adversaries.
  void set_level(graph::VertexId v, std::int32_t level);

  /// The paper's p_t(v) for the current configuration.
  double beep_probability(graph::VertexId v) const;

  /// ℓ(v) ≤ 0 (Definition 3.3).
  bool is_prominent(graph::VertexId v) const { return levels_[v] <= 0; }

  /// I_t: stable MIS members of the current configuration.
  std::vector<bool> mis_members() const;

  /// S_t = I_t ∪ N(I_t): all stable vertices.
  std::vector<bool> stable_vertices() const;

  /// S_t == V: the self-stabilization target predicate. When true,
  /// mis_members() is a valid MIS by construction (verified in tests).
  bool is_stabilized() const;

  const graph::Graph& graph() const noexcept { return *graph_; }

 private:
  const graph::Graph* graph_;
  LmaxVector lmax_;
  std::vector<std::int32_t> levels_;  // the RAM
  Knowledge knowledge_;
};

}  // namespace beepmis::core
