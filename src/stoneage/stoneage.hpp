#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/support/rng.hpp"

namespace beepmis::stoneage {

/// The Stone Age model of Emek & Wattenhofer (PODC 2013), synchronous
/// variant — the other sub-microprocessor network model the paper's related
/// work discusses ([8], [10]). Each node is a randomized machine that
/// *displays* one letter of a constant alphabet Σ per round; feedback is
/// "one-two-many" counting: for each letter σ, a node learns
/// min(#neighbors displaying σ, b) for a constant bound b.
///
/// The beeping model is the special case |Σ| = 2 (silent/beep), b = 1; see
/// beep_embedding.hpp for the formal embedding. b ≥ 2 makes the model
/// strictly stronger (a node can distinguish one beeping neighbor from
/// several), which is the extra power [8] exploits.
using Letter = std::uint8_t;

inline constexpr unsigned kMaxAlphabet = 8;

/// Per-round feedback for one node: saturated counts indexed by letter.
using LetterCounts = std::span<const std::uint8_t>;

class StoneAgeAlgorithm {
 public:
  virtual ~StoneAgeAlgorithm() = default;
  virtual std::string name() const = 0;
  virtual std::size_t node_count() const = 0;
  /// Alphabet size |Σ| (2..kMaxAlphabet). Letter values are in [0, |Σ|).
  virtual unsigned alphabet_size() const = 0;
  /// Counting bound b >= 1 (the "one-two-many" threshold).
  virtual unsigned counting_bound() const = 0;
  /// Phase 1: fill shown[v] with the letter node v displays this round.
  virtual void decide(std::uint64_t round, std::span<support::Rng> rngs,
                      std::span<Letter> shown) = 0;
  /// Phase 2: counts for node v are counts[v*|Σ| + σ] = min(#neighbors
  /// displaying σ, b). shown[v] is v's own display from phase 1.
  virtual void receive(std::uint64_t round, std::span<const Letter> shown,
                       std::span<const std::uint8_t> counts) = 0;
  virtual void corrupt_node(graph::VertexId v, support::Rng& rng) = 0;
};

/// Synchronous engine for the Stone Age model; mirrors beep::Simulation
/// (deterministic per-node streams from the master seed).
class StoneAgeSimulation {
 public:
  StoneAgeSimulation(const graph::Graph& g,
                     std::unique_ptr<StoneAgeAlgorithm> algo,
                     std::uint64_t seed);

  const graph::Graph& graph() const noexcept { return *graph_; }
  StoneAgeAlgorithm& algorithm() noexcept { return *algo_; }
  std::uint64_t round() const noexcept { return round_; }

  void step();
  void run(std::uint64_t rounds);

  std::span<const Letter> last_shown() const noexcept { return shown_; }
  /// counts[v*|Σ| + σ] from the last round.
  std::span<const std::uint8_t> last_counts() const noexcept {
    return counts_;
  }

 private:
  const graph::Graph* graph_;
  std::unique_ptr<StoneAgeAlgorithm> algo_;
  std::vector<support::Rng> rngs_;
  std::vector<Letter> shown_;
  std::vector<std::uint8_t> counts_;
  std::uint64_t round_ = 0;
};

}  // namespace beepmis::stoneage
