#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/graph/graph.hpp"

namespace beepmis::apps {

/// (α, β)-ruling sets computed through the self-stabilizing beeping MIS.
///
/// An (α, β)-ruling set R ⊆ V has pairwise distance ≥ α between members and
/// every vertex within distance β of some member. An MIS is exactly a
/// (2, 1)-ruling set; an MIS of the graph power G^{α-1} is an
/// (α, α-1)-ruling set of G — the standard reduction, used in clustering
/// (e.g. electing well-separated clusterheads in a sensor field).
struct RulingSetResult {
  std::vector<bool> members;
  std::uint64_t rounds = 0;  ///< beeping rounds used by the MIS on G^{α-1}
};

/// Computes an (alpha, alpha-1)-ruling set (alpha >= 2) by running the
/// self-stabilizing MIS on G^{alpha-1}. Returns std::nullopt if the MIS did
/// not stabilize within `max_rounds`.
std::optional<RulingSetResult> ruling_set_via_selfstab_mis(
    const graph::Graph& g, std::size_t alpha, std::uint64_t seed,
    std::uint64_t max_rounds);

/// Checks the (alpha, beta)-ruling property by BFS (test-sized graphs).
bool is_ruling_set(const graph::Graph& g, const std::vector<bool>& members,
                   std::size_t alpha, std::size_t beta);

}  // namespace beepmis::apps
