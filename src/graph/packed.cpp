#include "src/graph/packed.hpp"

#include <algorithm>
#include <numeric>

namespace beepmis::graph {

PackedGraph::PackedGraph(const Graph& g) : n_(g.vertex_count()) {
  words_ = (n_ + 63) / 64;
  block_offsets_.assign(n_ + 1, 0);
  // Neighborhoods are sorted, so each one groups into word-runs in a single
  // pass; reserve the worst case (one block per neighbor) up front.
  blocks_.reserve(2 * g.edge_count());
  for (VertexId v = 0; v < n_; ++v) {
    block_offsets_[v] = blocks_.size();
    std::uint32_t word = 0;
    std::uint64_t mask = 0;
    for (VertexId u : g.neighbors(v)) {
      const auto w = static_cast<std::uint32_t>(u >> 6);
      if (mask != 0 && w != word) {
        blocks_.push_back({word, mask});
        mask = 0;
      }
      word = w;
      mask |= std::uint64_t{1} << (u & 63);
    }
    if (mask != 0) blocks_.push_back({word, mask});
  }
  block_offsets_[n_] = blocks_.size();

  // Bitset rows only pay off when the average neighborhood already touches
  // most words of the id space (≥1 neighbor per word): below that a row scan
  // reads mostly-zero words the blocked walk skips for free.
  if (n_ > 0 && words_ > 0 && 2 * g.edge_count() >= n_ * words_) {
    rows_.assign(n_ * words_, 0);
    for (VertexId v = 0; v < n_; ++v) {
      std::uint64_t* row = rows_.data() + v * words_;
      for (VertexId u : g.neighbors(v)) row[u >> 6] |= std::uint64_t{1} << (u & 63);
    }
  }
}

bool PackedGraph::has_edge(VertexId u, VertexId v) const {
  const auto word = static_cast<std::uint32_t>(v >> 6);
  const std::uint64_t bit = std::uint64_t{1} << (v & 63);
  if (has_bitset_rows()) return (row(u)[word] & bit) != 0;
  const auto bl = blocks(u);
  const auto it = std::lower_bound(
      bl.begin(), bl.end(), word,
      [](const Block& b, std::uint32_t w) { return b.word < w; });
  return it != bl.end() && it->word == word && (it->mask & bit) != 0;
}

RelabeledGraph relabel_by_degree(const Graph& g) {
  const std::size_t n = g.vertex_count();
  RelabeledGraph out;
  out.perm.resize(n);
  std::iota(out.perm.begin(), out.perm.end(), VertexId{0});
  std::stable_sort(out.perm.begin(), out.perm.end(),
                   [&](VertexId a, VertexId b) {
                     return g.degree(a) != g.degree(b)
                                ? g.degree(a) > g.degree(b)
                                : a < b;
                   });
  out.inverse.resize(n);
  for (VertexId new_id = 0; new_id < n; ++new_id)
    out.inverse[out.perm[new_id]] = new_id;

  GraphBuilder b(n, g.name() + "_degord");
  for (VertexId v = 0; v < n; ++v)
    for (VertexId u : g.neighbors(v))
      if (v < u) b.add_edge(out.inverse[v], out.inverse[u]);
  out.graph = std::move(b).build();
  return out;
}

}  // namespace beepmis::graph
