#include "src/obs/report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/json_parse.hpp"

namespace beepmis {
namespace {

/// A minimal bench capture: two engine pairs + a sink-overhead pair.
const char* kBenchCapture = R"({
  "schema": "beepmis.run.v1", "tool": "bench_e11_micro",
  "timestamp": "2026-08-07T00:00:00Z", "seed": 0,
  "graph": {"name": "er", "family": "er-avg8", "n": 0, "m": 0,
            "max_degree": 0},
  "algorithm": {"name": "micro-benchmarks", "init": "", "c1": 0},
  "build": {"compiler": "gcc", "build_type": "Release", "assertions": false,
            "git_sha": "abc123def456", "git_dirty": false},
  "timing": {"wall_ms": 1.0}, "extra": {},
  "metrics": {"counters": {}, "histograms": {}, "timers": {}, "digests": {},
    "gauges": {
      "BM_EngineRun/v1_fast/1024.cpu_ns": 1000.0,
      "BM_EngineRun/v1_reference/1024.cpu_ns": 2000.0,
      "BM_EngineRun/v3_fast/1024.cpu_ns": 400.0,
      "BM_EngineRun/v3_reference/1024.cpu_ns": 800.0,
      "BM_FastEngineRun_NoSink/10240.cpu_ns": 10000.0,
      "BM_FastEngineRun_Digest/10240.cpu_ns": 10100.0,
      "BM_FastEngineRun_JsonlSink/10240.cpu_ns": 10500.0,
      "BM_FastEngineKernel/scalar/10240.cpu_ns": 16000.0,
      "BM_FastEngineKernel/bit/10240.cpu_ns": 12800.0,
      "BM_FastEngineKernel/frontier/10240.cpu_ns": 3200.0
    }}
})";

/// A CLI-style manifest with a stabilization digest.
const char* kRunManifest = R"({
  "schema": "beepmis.run.v1", "tool": "beepmis_cli",
  "timestamp": "2026-08-07T00:00:00Z", "seed": 7,
  "graph": {"name": "er_n512", "family": "er-avg8", "n": 512, "m": 2048,
            "max_degree": 17},
  "algorithm": {"name": "V1-global-delta", "init": "uniform-random",
                "c1": 0},
  "build": {"compiler": "gcc", "build_type": "Release", "assertions": false},
  "timing": {"wall_ms": 5.0}, "extra": {},
  "metrics": {"counters": {}, "gauges": {}, "histograms": {}, "timers": {},
    "digests": {
      "runner.rounds_to_stabilize": {"count": 20, "min": 30, "max": 90,
        "mean": 50.0, "p50": 48.0, "p90": 70.0, "p95": 80.0, "p99": 88.0}
    }}
})";

obs::JsonValue parse(const char* text) {
  obs::JsonValue v;
  std::string error;
  EXPECT_TRUE(obs::json_parse(text, &v, &error)) << error;
  return v;
}

TEST(Report, SelfComparisonHasNoRegressions) {
  obs::ReportBuilder b;
  std::string error;
  ASSERT_TRUE(b.add_document(parse(kBenchCapture), "bench.json", &error))
      << error;
  ASSERT_TRUE(b.set_baseline(parse(kBenchCapture), "bench.json", &error))
      << error;
  EXPECT_TRUE(b.regressions(0.10).empty());
  EXPECT_EQ(b.bench_deltas().size(), 10u);
}

TEST(Report, SyntheticRegressionIsFlagged) {
  // Regress one benchmark by 25% in the "current" capture.
  std::string regressed = kBenchCapture;
  const std::string needle = "\"BM_EngineRun/v1_fast/1024.cpu_ns\": 1000.0";
  const auto pos = regressed.find(needle);
  ASSERT_NE(pos, std::string::npos);
  regressed.replace(pos, needle.size(),
                    "\"BM_EngineRun/v1_fast/1024.cpu_ns\": 1250.0");

  obs::ReportBuilder b;
  std::string error;
  ASSERT_TRUE(
      b.add_document(parse(regressed.c_str()), "current.json", &error));
  ASSERT_TRUE(b.set_baseline(parse(kBenchCapture), "old.json", &error));

  const auto regs = b.regressions(0.10);
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_EQ(regs[0].name, "BM_EngineRun/v1_fast/1024");
  EXPECT_NEAR(regs[0].ratio, 1.25, 1e-9);
  // A generous tolerance waves the same delta through.
  EXPECT_TRUE(b.regressions(0.30).empty());
}

TEST(Report, SpeedupAndOverheadTablesFromGauges) {
  obs::ReportBuilder b;
  std::string error;
  ASSERT_TRUE(b.add_document(parse(kBenchCapture), "bench.json", &error));

  const auto speed = b.speedups();
  ASSERT_EQ(speed.size(), 2u);  // v1 and v3 pairs
  for (const auto& s : speed) {
    EXPECT_EQ(s.n, 1024u);
    EXPECT_NEAR(s.speedup, 2.0, 1e-9);
  }

  const auto kernels = b.kernel_speedups();
  ASSERT_EQ(kernels.size(), 2u);  // bit and frontier vs scalar
  EXPECT_EQ(kernels[0].kernel, "bit");
  EXPECT_NEAR(kernels[0].speedup, 1.25, 1e-9);
  EXPECT_EQ(kernels[1].kernel, "frontier");
  EXPECT_NEAR(kernels[1].speedup, 5.0, 1e-9);
  for (const auto& k : kernels) EXPECT_EQ(k.n, 10240u);

  const auto over = b.overheads();
  ASSERT_EQ(over.size(), 2u);  // Digest and JsonlSink vs NoSink
  for (const auto& o : over) {
    if (o.tag == "Digest") {
      EXPECT_NEAR(o.overhead, 0.01, 1e-9);
    }
    if (o.tag == "JsonlSink") {
      EXPECT_NEAR(o.overhead, 0.05, 1e-9);
    }
  }
}

TEST(Report, StabilizationRowsAggregateDigestsByKey) {
  obs::ReportBuilder b;
  std::string error;
  ASSERT_TRUE(b.add_document(parse(kRunManifest), "a.json", &error));
  ASSERT_TRUE(b.add_document(parse(kRunManifest), "b.json", &error));

  const auto rows = b.stabilization_rows();
  ASSERT_EQ(rows.size(), 1u);  // same (algorithm, family, n) key merges
  EXPECT_EQ(rows[0].algorithm, "V1-global-delta");
  EXPECT_EQ(rows[0].family, "er-avg8");
  EXPECT_EQ(rows[0].n, 512u);
  EXPECT_EQ(rows[0].count, 40u);
  EXPECT_DOUBLE_EQ(rows[0].p95, 80.0);
  EXPECT_DOUBLE_EQ(rows[0].min, 30.0);
  EXPECT_DOUBLE_EQ(rows[0].max, 90.0);
  EXPECT_FALSE(rows[0].approximate);
}

TEST(Report, HistogramEnvelopeFallbackForPreDigestArtifacts) {
  const char* legacy = R"({
    "schema": "beepmis.run.v1", "tool": "beepmis_cli",
    "timestamp": "t", "seed": 1,
    "graph": {"name": "g", "family": "torus", "n": 64, "m": 128,
              "max_degree": 4},
    "algorithm": {"name": "V2-own-degree", "init": "all-zero", "c1": 0},
    "build": {}, "timing": {"wall_ms": 1.0}, "extra": {},
    "metrics": {"counters": {}, "gauges": {}, "timers": {},
      "histograms": {"runner.rounds_to_stabilize": {
        "count": 4, "sum": 100, "mean": 25.0,
        "buckets": [{"le": 16, "count": 1}, {"le": 32, "count": 3}]}}}
  })";
  obs::ReportBuilder b;
  std::string error;
  ASSERT_TRUE(b.add_document(parse(legacy), "legacy.json", &error)) << error;
  const auto rows = b.stabilization_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].approximate);
  EXPECT_EQ(rows[0].count, 4u);
  EXPECT_DOUBLE_EQ(rows[0].p50, 32.0);  // rank 2 lands in the (16,32] bucket
}

TEST(Report, EventStreamsYieldOneStabilizationSample) {
  obs::ReportBuilder b;
  const std::string jsonl =
      "{\"round\":1,\"active\":5}\n"
      "{\"round\":2,\"active\":2}\n"
      "{\"round\":3,\"active\":0}\n"
      "{\"round\":4,\"active\":0}\n"
      "{\"round\":5,\"active\"";  // incomplete trailing line: ignored
  EXPECT_EQ(b.add_events(jsonl, "run.jsonl"), 4u);
  const auto rows = b.stabilization_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].p50, 3.0);  // stabilized at round 3
}

TEST(Report, SweepDocumentFeedsStabilizationAndGrowthFits) {
  // Five sizes along an exact 10·ln(n) + 5 curve: the log n model must win
  // with R² ≈ 1, and every point must land in the stabilization table.
  const char* sweep = R"({
    "schema": "beepmis.sweep.v1", "family": "er-avg8",
    "algorithm": "V1-global-delta", "init": "uniform-random",
    "base_seed": 7, "seeds_per_size": 4, "kernel": "sharded",
    "points": [
      {"n": 256, "runs": 4, "mean": 60.45, "min": 60, "max": 61,
       "p50": 60.45, "p90": 61, "p95": 61, "p99": 61,
       "failures": 0, "invalid": 0},
      {"n": 1024, "runs": 4, "mean": 74.31, "min": 74, "max": 75,
       "p50": 74.31, "p90": 75, "p95": 75, "p99": 75,
       "failures": 0, "invalid": 0},
      {"n": 4096, "runs": 4, "mean": 88.18, "min": 88, "max": 89,
       "p50": 88.18, "p90": 89, "p95": 89, "p99": 89,
       "failures": 0, "invalid": 0},
      {"n": 16384, "runs": 4, "mean": 102.04, "min": 101, "max": 103,
       "p50": 102.04, "p90": 103, "p95": 103, "p99": 103,
       "failures": 0, "invalid": 0},
      {"n": 65536, "runs": 4, "mean": 115.90, "min": 115, "max": 117,
       "p50": 115.90, "p90": 117, "p95": 117, "p99": 117,
       "failures": 0, "invalid": 0}
    ]
  })";
  obs::ReportBuilder b;
  std::string error;
  ASSERT_TRUE(b.add_document(parse(sweep), "sweep.json", &error)) << error;

  const auto stab = b.stabilization_rows();
  ASSERT_EQ(stab.size(), 5u);
  EXPECT_EQ(stab[0].algorithm, "V1-global-delta");
  EXPECT_EQ(stab[0].family, "er-avg8");
  EXPECT_EQ(stab[0].n, 256u);
  EXPECT_EQ(stab[0].count, 4u);
  EXPECT_NEAR(stab[0].p50, 60.45, 1e-9);
  EXPECT_FALSE(stab[0].approximate);

  const auto fits = b.growth_fit_rows();
  ASSERT_EQ(fits.size(), 4u);  // all models, ranked best-R² first
  EXPECT_TRUE(fits[0].best);
  EXPECT_EQ(fits[0].model, "log n");
  EXPECT_GT(fits[0].r2, 0.999);
  EXPECT_NEAR(fits[0].slope, 10.0, 0.1);
  EXPECT_NEAR(fits[0].intercept, 5.0, 1.0);
  EXPECT_EQ(fits[0].sizes, 5u);
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_FALSE(fits[i].best);
    EXPECT_LE(fits[i].r2, fits[i - 1].r2);
  }

  // The fit also lands in both renderings.
  std::ostringstream md, js;
  b.write_markdown(md, 0.10);
  EXPECT_NE(md.str().find("Growth-model fits"), std::string::npos);
  b.write_json(js, 0.10);
  obs::JsonValue doc;
  ASSERT_TRUE(obs::json_parse(js.str(), &doc));
  ASSERT_EQ(doc.get("growth_fits").array.size(), 4u);
  EXPECT_EQ(doc.get("growth_fits").array[0].get("model").as_string(),
            "log n");
}

TEST(Report, GrowthFitsNeedThreeDistinctSizes) {
  const char* sweep = R"({
    "schema": "beepmis.sweep.v1", "family": "torus",
    "algorithm": "V2-own-degree", "points": [
      {"n": 64, "runs": 2, "mean": 40, "min": 39, "max": 41,
       "p50": 40, "p90": 41, "p95": 41, "p99": 41},
      {"n": 256, "runs": 2, "mean": 50, "min": 49, "max": 51,
       "p50": 50, "p90": 51, "p95": 51, "p99": 51}
    ]
  })";
  obs::ReportBuilder b;
  std::string error;
  ASSERT_TRUE(b.add_document(parse(sweep), "sweep.json", &error)) << error;
  EXPECT_EQ(b.stabilization_rows().size(), 2u);
  EXPECT_TRUE(b.growth_fit_rows().empty());
}

TEST(Report, UnknownSchemaIsRejected) {
  obs::ReportBuilder b;
  std::string error;
  EXPECT_FALSE(
      b.add_document(parse(R"({"schema": "bogus.v9"})"), "x.json", &error));
  EXPECT_NE(error.find("bogus.v9"), std::string::npos);
}

TEST(Report, DumpDocumentContributesAnomalies) {
  const char* dump = R"({
    "schema": "beepmis.dump.v1",
    "context": {}, "config": {},
    "anomalies": [{"kind": "stall", "round": 123}],
    "ring": [], "snapshots": [], "final_levels": []
  })";
  obs::ReportBuilder b;
  std::string error;
  ASSERT_TRUE(b.add_document(parse(dump), "dump.json", &error)) << error;
  ASSERT_EQ(b.dump_anomalies().size(), 1u);
  EXPECT_EQ(b.dump_anomalies()[0].kind, "stall");
  EXPECT_EQ(b.dump_anomalies()[0].round, 123u);
}

TEST(Report, TraceDocumentContributesSpanQuantiles) {
  // Context values are strings, the tracer's context block being a
  // string->string map — the n coordinate must still parse.
  const char* trace = R"({
    "schema": "beepmis.trace.v1", "capacity_per_thread": 64,
    "counter_every": 0, "dropped_total": 0,
    "context": {"algorithm": "V1-global-delta", "family": "torus",
                "n": "256"},
    "threads": [{"tid": 0, "label": "main", "recorded": 3, "dropped": 0,
      "events": [
        {"ph": "X", "name": "engine.round", "ts_ns": 0, "dur_ns": 100},
        {"ph": "X", "name": "engine.round", "ts_ns": 200, "dur_ns": 300},
        {"ph": "C", "name": "engine.active", "ts_ns": 50, "value": 9}
      ]}]
  })";
  obs::ReportBuilder b;
  std::string error;
  ASSERT_TRUE(b.add_document(parse(trace), "trace.json", &error)) << error;
  const auto rows = b.span_rows();
  // Counter events don't feed span digests.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].algorithm, "V1-global-delta");
  EXPECT_EQ(rows[0].family, "torus");
  EXPECT_EQ(rows[0].n, 256u);
  EXPECT_EQ(rows[0].name, "engine.round");
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_DOUBLE_EQ(rows[0].mean_ns, 200.0);
  EXPECT_DOUBLE_EQ(rows[0].max_ns, 300.0);

  std::ostringstream js;
  b.write_json(js, 0.10);
  obs::JsonValue doc;
  ASSERT_TRUE(obs::json_parse(js.str(), &doc, &error)) << error;
  ASSERT_EQ(doc.get("trace_spans").array.size(), 1u);
  EXPECT_EQ(doc.get("trace_spans").array[0].get("span").as_string(""),
            "engine.round");
}

TEST(Report, JsonOutputRoundTripsAndMarkdownMentionsBaseline) {
  obs::ReportBuilder b;
  std::string error;
  ASSERT_TRUE(b.add_document(parse(kBenchCapture), "bench.json", &error));
  ASSERT_TRUE(b.add_document(parse(kRunManifest), "run.json", &error));
  ASSERT_TRUE(b.set_baseline(parse(kBenchCapture), "bench.json", &error));

  std::ostringstream js;
  b.write_json(js, 0.10);
  obs::JsonValue doc;
  ASSERT_TRUE(obs::json_parse(js.str(), &doc, &error)) << error;
  EXPECT_EQ(doc.get("schema").as_string(), "beepmis.report.v1");
  EXPECT_TRUE(doc.get("baseline").get("present").boolean);
  EXPECT_EQ(doc.get("stabilization").array.size(), 1u);
  EXPECT_EQ(doc.get("speedups").array.size(), 2u);
  EXPECT_EQ(doc.get("kernel_speedups").array.size(), 2u);

  std::ostringstream md;
  b.write_markdown(md, 0.10);
  // Baseline label carries the git provenance from the build block.
  EXPECT_NE(md.str().find("abc123def456"), std::string::npos);
  EXPECT_NE(md.str().find("No regressions"), std::string::npos);
}

TEST(Report, IngestFileAutoDetectsKind) {
  const std::string dir = testing::TempDir();
  const std::string doc_path = dir + "beepmis_report_doc.json";
  const std::string events_path = dir + "beepmis_report_events.jsonl";
  const std::string garbage_path = dir + "beepmis_report_garbage.txt";
  {
    std::ofstream(doc_path) << kRunManifest;
    std::ofstream(events_path)
        << "{\"round\":1,\"active\":1}\n{\"round\":2,\"active\":0}\n";
    std::ofstream(garbage_path) << "not json at all\n";
  }
  obs::ReportBuilder b;
  std::string error;
  EXPECT_TRUE(obs::report_ingest_file(b, doc_path, &error)) << error;
  EXPECT_TRUE(obs::report_ingest_file(b, events_path, &error)) << error;
  EXPECT_FALSE(obs::report_ingest_file(b, garbage_path, &error));
  EXPECT_FALSE(obs::report_ingest_file(b, dir + "does_not_exist", &error));
  EXPECT_EQ(b.stabilization_rows().size(), 2u);
}

}  // namespace
}  // namespace beepmis
