#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "src/beep/network.hpp"
#include "src/core/engine.hpp"
#include "src/core/init.hpp"
#include "src/core/lmax.hpp"
#include "src/core/selfstab_mis.hpp"
#include "src/core/selfstab_mis2.hpp"
#include "src/graph/graph.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/sink.hpp"
#include "src/support/task_pool.hpp"

namespace beepmis::exp {

/// Which of the paper's three algorithm variants to run. The enum lives in
/// core (the engine factory dispatches on it); re-exported here because the
/// whole experiment layer spells it exp::Variant.
using Variant = core::Variant;
using core::variant_name;

/// Outcome of one run-to-stabilization.
struct RunResult {
  bool stabilized = false;   ///< reached S_t = V within the round budget
  beep::Round rounds = 0;    ///< rounds until stabilization (or budget)
  std::size_t mis_size = 0;  ///< |I_t| at stop
  bool valid_mis = false;    ///< verifier-confirmed MIS at stop
};

/// Builds a simulation of the requested variant on `g`, with the
/// paper-default constant c1 for the variant if `c1` is 0.
std::unique_ptr<beep::Simulation> make_selfstab_sim(const graph::Graph& g,
                                                    Variant variant,
                                                    std::uint64_t seed,
                                                    std::int32_t c1 = 0);

/// Applies an initial-configuration policy to a simulation built by
/// make_selfstab_sim (dispatches on the concrete algorithm type).
void apply_init(beep::Simulation& sim, core::InitPolicy policy,
                support::Rng& rng);

/// True iff the simulation's algorithm reports S_t = V (dispatches on type).
bool selfstab_stabilized(const beep::Simulation& sim);

/// Current I_t of the simulation's algorithm.
std::vector<bool> selfstab_mis_members(const beep::Simulation& sim);

/// Runs until stabilization or `max_rounds`, verifying the final MIS.
/// Counts rounds from the simulation's *current* round, so it also measures
/// re-stabilization after mid-run fault injection. When `metrics` is given,
/// the run is timed ("runner.run_to_stabilization") and its outcome lands in
/// the runner.* counters and the "runner.rounds_to_stabilize" histogram.
RunResult run_to_stabilization(beep::Simulation& sim, beep::Round max_rounds,
                               obs::MetricsRegistry* metrics = nullptr);

/// Engine-interface counterpart: same timer, counters and verification for
/// a run driven through core::Engine (fast or reference).
RunResult run_to_stabilization(core::Engine& engine, beep::Round max_rounds,
                               obs::MetricsRegistry* metrics = nullptr);

/// One-shot: build, initialize, run. The workhorse of the sweeps. Routed
/// through core::make_engine — `kind` selects the executor and `kernel` the
/// fast engine's round kernel (Auto = fast / frontier; results are engine-
/// and kernel-independent because all executors are stream-identical under
/// the same seed). `observer`, if given, receives one obs::RoundEvent per
/// round.
/// `shard_threads` sizes the fast engine's intra-round sharded pool (see
/// core::EngineConfig::shard_threads); 1 keeps every kernel serial.
RunResult run_variant(const graph::Graph& g, Variant variant,
                      core::InitPolicy init, std::uint64_t seed,
                      beep::Round max_rounds, std::int32_t c1 = 0,
                      obs::MetricsRegistry* metrics = nullptr,
                      obs::RoundObserver* observer = nullptr,
                      core::EngineKind kind = core::EngineKind::Auto,
                      core::KernelKind kernel = core::KernelKind::Auto,
                      std::size_t shard_threads = 1);

/// Batch entry point: one run_variant replica per entry of `seeds`, all on
/// the same graph, executed through `pool` (one task per seed; pass a
/// 1-thread pool for inline serial execution). Telemetry is sharded the
/// same way the sweep shards it: each replica records into a private
/// scratch registry and buffers its events, and the coordinator folds both
/// into `metrics` / `observer` in ascending seed order after the batch
/// drains — results and telemetry are bit-identical for any thread count.
/// Returns one RunResult per seed, in seed order.
std::vector<RunResult> run_replicas(const graph::Graph& g, Variant variant,
                                    core::InitPolicy init,
                                    std::span<const std::uint64_t> seeds,
                                    beep::Round max_rounds,
                                    support::TaskPool& pool,
                                    std::int32_t c1 = 0,
                                    obs::MetricsRegistry* metrics = nullptr,
                                    obs::RoundObserver* observer = nullptr,
                                    core::EngineKind kind =
                                        core::EngineKind::Auto,
                                    core::KernelKind kernel =
                                        core::KernelKind::Auto,
                                    std::size_t shard_threads = 1);

/// A generous default budget: stabilization is Θ(log n), so this failing
/// indicates a real bug rather than bad luck.
beep::Round default_round_budget(std::size_t n);

/// Default classification bound for recovery epochs (obs::RecoveryConfig::
/// recovery_bound): re-stabilization after a fault within this many rounds
/// counts as recovered-within-bound, later is a stall. Currently equal to
/// default_round_budget — the theorems make no distinction between
/// from-scratch and post-fault convergence.
beep::Round default_recovery_bound(std::size_t n);

}  // namespace beepmis::exp
