/// Dynamic network scenario: a mobile ad-hoc network whose links churn as
/// nodes move, and whose nodes occasionally crash (go silent, dropping all
/// links) and rejoin. The MIS clusterhead structure must keep healing. This
/// exercises the dynamic-topology extension: graph perturbation + level
/// carry-over + re-stabilization, with a convergence log dumped as CSV.

#include <algorithm>
#include <iostream>
#include <memory>

#include "src/core/init.hpp"
#include "src/core/lmax.hpp"
#include "src/core/selfstab_mis.hpp"
#include "src/core/transfer.hpp"
#include "src/exp/convlog.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/perturb.hpp"
#include "src/mis/verifier.hpp"

int main() {
  using namespace beepmis;

  support::Rng grng(77);
  graph::Graph topo = graph::make_random_geometric(200, 0.12, grng);
  std::printf("mobile network: %zu nodes, %zu links initially\n\n",
              topo.vertex_count(), topo.edge_count());

  auto algo = std::make_unique<core::SelfStabMis>(
      topo, core::lmax_own_degree(topo), core::Knowledge::OwnDegree);
  auto* a = algo.get();
  auto sim = std::make_unique<beep::Simulation>(topo, std::move(algo), 11);
  support::Rng chaos(13);
  core::apply_init(*a, core::InitPolicy::UniformRandom, chaos);

  exp::ConvergenceLog log;
  auto settle = [&](const char* what) {
    const auto start = sim->round();
    while (!a->is_stabilized() && sim->round() - start < 100000) {
      sim->step();
      log.observe(*sim);
    }
    const auto members = a->mis_members();
    std::printf("%-24s +%4llu rounds  links=%5zu  clusterheads=%3zu  valid=%s\n",
                what, static_cast<unsigned long long>(sim->round() - start),
                topo.edge_count(), mis::member_count(members),
                mis::is_mis(topo, members) ? "yes" : "NO");
  };

  settle("cold start");

  // Ten epochs of mobility: each churns 5% of the links, then one epoch
  // crashes 10 nodes (isolation) and later restores fresh links for them.
  for (int epoch = 1; epoch <= 10; ++epoch) {
    const std::size_t churn = topo.edge_count() / 20;
    graph::Graph next = (epoch == 5)
                            ? graph::isolate_vertices(topo, 10, chaos)
                            : graph::perturb_edges(topo, churn, churn, chaos);
    // The simulation and algorithm borrow the graph: save the surviving
    // RAM (levels), tear the old world down, then rebuild on the new
    // topology before re-applying the levels (clamped to the new lmax).
    std::vector<std::int32_t> old_levels(topo.vertex_count());
    for (graph::VertexId v = 0; v < topo.vertex_count(); ++v)
      old_levels[v] = a->level(v);
    sim.reset();
    topo = std::move(next);
    auto algo2 = std::make_unique<core::SelfStabMis>(
        topo, core::lmax_own_degree(topo), core::Knowledge::OwnDegree);
    auto* a2 = algo2.get();
    for (graph::VertexId v = 0; v < topo.vertex_count(); ++v)
      a2->set_level(v, std::clamp(old_levels[v], -a2->lmax(v), a2->lmax(v)));
    a = a2;
    sim = std::make_unique<beep::Simulation>(topo, std::move(algo2),
                                             1000 + epoch);
    char label[40];
    std::snprintf(label, sizeof label,
                  epoch == 5 ? "epoch %d (10 crashes)" : "epoch %d (churn)",
                  epoch);
    settle(label);
  }

  std::printf("\nconvergence log: %zu observed rounds (CSV below, last 5)\n",
              log.points().size());
  const auto& pts = log.points();
  std::printf("round,prominent,stable,mis,beeps\n");
  for (std::size_t i = pts.size() >= 5 ? pts.size() - 5 : 0; i < pts.size();
       ++i)
    std::printf("%llu,%zu,%zu,%zu,%u\n",
                static_cast<unsigned long long>(pts[i].round),
                pts[i].prominent, pts[i].stable, pts[i].mis,
                pts[i].beeps_ch1);
  return 0;
}
