#include "src/exp/families.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/properties.hpp"

namespace beepmis::exp {
namespace {

const std::vector<Family> kAll = {
    Family::ErdosRenyiAvg8, Family::Random4Regular, Family::Torus,
    Family::BarabasiAlbert3, Family::GeometricAvg8, Family::RandomTree,
    Family::Cycle,           Family::Star,
};

TEST(Families, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (Family f : kAll) names.insert(family_name(f));
  EXPECT_EQ(names.size(), kAll.size());
  // These names are CLI/EXPERIMENTS.md API — changing them breaks scripts.
  EXPECT_EQ(family_name(Family::ErdosRenyiAvg8), "er-avg8");
  EXPECT_EQ(family_name(Family::Torus), "torus");
  EXPECT_EQ(family_name(Family::Star), "star");
}

TEST(Families, ScalingFamiliesAreASubset) {
  for (Family f : scaling_families())
    EXPECT_NE(std::find(kAll.begin(), kAll.end(), f), kAll.end());
  EXPECT_GE(scaling_families().size(), 4u);
}

class FamilyShape : public ::testing::TestWithParam<Family> {};

TEST_P(FamilyShape, InstancesAreWellFormedAcrossSizes) {
  const Family f = GetParam();
  for (std::size_t n : {16u, 100u, 400u}) {
    support::Rng rng(n);
    const graph::Graph g = make_family(f, n, rng);
    // Square-rounding families (torus) and even-n families (4-regular) may
    // adjust n slightly; it must stay within 20%.
    EXPECT_GE(g.vertex_count(), n * 8 / 10) << family_name(f);
    EXPECT_LE(g.vertex_count(), n * 12 / 10) << family_name(f);
    // No self-loops / duplicates by construction; degree sums match.
    std::size_t degsum = 0;
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
      degsum += g.degree(v);
    EXPECT_EQ(degsum, 2 * g.edge_count());
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, FamilyShape, ::testing::ValuesIn(kAll),
    [](const ::testing::TestParamInfo<Family>& info) {
      std::string s = family_name(info.param);
      for (char& c : s)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return s;
    });

TEST(Families, ExpectedStructuralProperties) {
  support::Rng rng(5);
  EXPECT_TRUE(graph::is_regular(make_family(Family::Random4Regular, 200, rng),
                                4));
  EXPECT_TRUE(graph::is_regular(make_family(Family::Torus, 225, rng), 4));
  const auto tree = make_family(Family::RandomTree, 300, rng);
  EXPECT_EQ(tree.edge_count(), tree.vertex_count() - 1);
  EXPECT_TRUE(graph::is_connected(tree));
  EXPECT_EQ(make_family(Family::Star, 100, rng).max_degree(), 99u);
  const auto er = make_family(Family::ErdosRenyiAvg8, 2000, rng);
  EXPECT_NEAR(graph::degree_stats(er).mean, 8.0, 0.7);
}

TEST(Families, RandomFamiliesVaryWithRng) {
  support::Rng a(1), b(2);
  const auto ga = make_family(Family::ErdosRenyiAvg8, 300, a);
  const auto gb = make_family(Family::ErdosRenyiAvg8, 300, b);
  bool differ = ga.edge_count() != gb.edge_count();
  for (graph::VertexId v = 0; !differ && v < 300; ++v)
    differ = ga.degree(v) != gb.degree(v);
  EXPECT_TRUE(differ);
}

TEST(FamiliesDeath, TinyNRejected) {
  support::Rng rng(1);
  EXPECT_DEATH(make_family(Family::Cycle, 8, rng), "n >= 16");
}

}  // namespace
}  // namespace beepmis::exp
