#include "src/support/args.hpp"

#include <cstdlib>

#include "src/support/check.hpp"

namespace beepmis::support {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  BEEPMIS_CHECK(!specs_.count(name), "duplicate argument declaration");
  specs_[name] = Spec{true, "", help};
  order_.push_back(name);
  flags_[name] = false;
}

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  BEEPMIS_CHECK(!specs_.count(name), "duplicate argument declaration");
  specs_[name] = Spec{false, default_value, help};
  order_.push_back(name);
  values_[name] = default_value;
}

bool ArgParser::parse(int argc, const char* const* argv, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      *error = usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      *error = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(arg);
    if (it == specs_.end()) {
      *error = "unknown argument: --" + arg;
      return false;
    }
    if (it->second.is_flag) {
      if (has_value) {
        *error = "flag --" + arg + " does not take a value";
        return false;
      }
      flags_[arg] = true;
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          *error = "option --" + arg + " needs a value";
          return false;
        }
        value = argv[++i];
      }
      values_[arg] = value;
    }
  }
  return true;
}

bool ArgParser::flag(const std::string& name) const {
  const auto it = flags_.find(name);
  BEEPMIS_CHECK(it != flags_.end(), "undeclared flag queried");
  return it->second;
}

const std::string& ArgParser::get(const std::string& name) const {
  const auto it = values_.find(name);
  BEEPMIS_CHECK(it != values_.end(), "undeclared option queried");
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const std::int64_t x = std::strtoll(v.c_str(), &end, 10);
  BEEPMIS_CHECK(end && *end == '\0' && !v.empty(),
                "option value is not an integer");
  return x;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  BEEPMIS_CHECK(end && *end == '\0' && !v.empty(),
                "option value is not a number");
  return x;
}

std::string ArgParser::usage(const char* argv0) const {
  std::string out = description_;
  out += "\n\nusage: ";
  out += argv0;
  out += " [options]\n\noptions:\n";
  for (const auto& name : order_) {
    const Spec& s = specs_.at(name);
    out += "  --" + name;
    if (!s.is_flag) out += " <value>   (default: " + s.default_value + ")";
    out += "\n      " + s.help + "\n";
  }
  out += "  --help\n      print this message\n";
  return out;
}

}  // namespace beepmis::support
