#include "src/support/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <set>
#include <vector>

namespace beepmis::support {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  // xoshiro must not be seeded all-zero; SplitMix seeding prevents it.
  std::uint64_t acc = 0;
  for (int i = 0; i < 16; ++i) acc |= r();
  EXPECT_NE(acc, 0u);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(11);
  constexpr int kBuckets = 8, kSamples = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[r.below(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliPow2ZeroAlwaysTrue) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(r.bernoulli_pow2(0));
}

TEST(Rng, BernoulliPow2HugeAlwaysFalse) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(r.bernoulli_pow2(64));
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(r.bernoulli_pow2(200));
}

TEST(Rng, BernoulliPow2MatchesRate) {
  // Empirical rate of 2^-k coins within 5 sigma.
  for (unsigned k : {1u, 2u, 3u, 5u}) {
    Rng r(23 + k);
    const int samples = 200000;
    int hits = 0;
    for (int i = 0; i < samples; ++i) hits += r.bernoulli_pow2(k);
    const double p = std::ldexp(1.0, -static_cast<int>(k));
    const double sigma = std::sqrt(samples * p * (1 - p));
    EXPECT_NEAR(hits, samples * p, 5 * sigma) << "k=" << k;
  }
}

TEST(Rng, DeriveStreamIsDeterministic) {
  const Rng base(99);
  Rng a = base.derive_stream(5);
  Rng b = base.derive_stream(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DeriveStreamDistinctKeysDiffer) {
  const Rng base(99);
  Rng a = base.derive_stream(1);
  Rng b = base.derive_stream(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, DeriveStreamIndependentOfDraws) {
  // Stream derivation must depend on the seed, not on how many values were
  // drawn — this is what makes runs order-independent.
  Rng a(123), b(123);
  (void)a();
  (void)a();
  Rng sa = a.derive_stream(7), sb = b.derive_stream(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sa(), sb());
}

TEST(Rng, ManyStreamsNoObviousCollisions) {
  const Rng base(7);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t k = 0; k < 4096; ++k)
    firsts.insert(base.derive_stream(k)());
  EXPECT_EQ(firsts.size(), 4096u);
}

TEST(Rng, GoldenValuesPinTheReproducibilityContract) {
  // Every experiment table in EXPERIMENTS.md is keyed to seeds; if these
  // golden values ever change, all published numbers silently shift. Any
  // intentional RNG change must bump them AND regenerate bench_output.txt.
  Rng r(42);
  EXPECT_EQ(r(), 0x15780b2e0c2ec716ULL);
  EXPECT_EQ(r(), 0x6104d9866d113a7eULL);
  EXPECT_EQ(r(), 0xae17533239e499a1ULL);
  EXPECT_EQ(r(), 0xecb8ad4703b360a1ULL);
  Rng d = Rng(42).derive_stream(7);
  EXPECT_EQ(d(), 0xec9d13d22a3473ddULL);
  std::uint64_t s = 1234567;
  EXPECT_EQ(splitmix64(s), 0x599ed017fb08fc85ULL);
  EXPECT_EQ(splitmix64(s), 0x2c73f08458540fa5ULL);
}

TEST(Splitmix64, KnownGoldenValues) {
  // Reference values for seed 1234567 from the public-domain reference code.
  std::uint64_t s = 1234567;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  // Determinism across calls with the same starting state:
  std::uint64_t s2 = 1234567;
  EXPECT_EQ(splitmix64(s2), a);
  EXPECT_EQ(splitmix64(s2), b);
}


// ---------------------------------------------------------------------------
// Counter-based draws.

TEST(CounterRng, GoldenFirstDraws) {
  // Pinned outputs of the (seed, node, round) sponge. These freeze the
  // counter-draw function: every engine result is a pure function of these
  // values, so any change here silently re-rolls every simulation.
  struct Golden {
    std::uint64_t seed, node, round, draw;
  };
  const Golden cases[] = {
      {0ull, 0ull, 0ull, 0x8a21cd34a214a917ull},
      {42ull, 0ull, 0ull, 0x2bb3ea773a02d085ull},
      {42ull, 1ull, 0ull, 0x5af290fdc89bce31ull},
      {42ull, 0ull, 1ull, 0x7f2481033c03b875ull},
      {42ull, 7ull, 123ull, 0x8e7e0daf3d99dc82ull},
      {11400714819323198485ull, 1000000ull, 5000ull, 0x10ec941f19acd37cull},
  };
  for (const auto& c : cases)
    EXPECT_EQ(counter_first_draw(c.seed, c.node, c.round), c.draw)
        << c.seed << "/" << c.node << "/" << c.round;
}

TEST(CounterRng, FirstDrawMatchesStreamOutput) {
  // The branch-free fast path must equal draw_index 0 of the full stream.
  for (std::uint64_t seed : {0ull, 42ull, ~0ull}) {
    for (std::uint64_t node = 0; node < 64; ++node) {
      for (std::uint64_t round : {0ull, 1ull, 17ull, 100000ull}) {
        Rng stream = counter_stream(seed, node, round);
        EXPECT_EQ(counter_first_draw(seed, node, round), stream());
      }
    }
  }
}

TEST(CounterRng, FirstDrawAtMatchesFirstDraw) {
  // Folding the per-round prefix once must not change any draw.
  for (std::uint64_t round : {0ull, 5ull, 61ull, 999983ull}) {
    const std::uint64_t rs = counter_round_state(42, round);
    for (std::uint64_t node = 0; node < 256; ++node)
      EXPECT_EQ(counter_first_draw_at(rs, node),
                counter_first_draw(42, node, round));
  }
}

TEST(CounterRng, DrawsAreOrderIndependent) {
  // The defining property: a draw depends only on its coordinate, never on
  // which other coordinates were evaluated before it or how often.
  std::vector<std::uint64_t> forward, backward;
  for (std::uint64_t node = 0; node < 128; ++node)
    forward.push_back(counter_first_draw(7, node, 3));
  counter_first_draw(7, 999, 999);  // interleaved unrelated draws
  counter_stream(7, 5, 5)();
  for (std::uint64_t node = 128; node-- > 0;)
    backward.push_back(counter_first_draw(7, node, 3));
  for (std::size_t i = 0; i < forward.size(); ++i)
    EXPECT_EQ(forward[i], backward[forward.size() - 1 - i]);
}

TEST(CounterRng, BernoulliPow2MatchesStreamAndEdges) {
  for (unsigned k : {0u, 1u, 3u, 10u, 63u}) {
    for (std::uint64_t node = 0; node < 32; ++node) {
      Rng stream = counter_stream(9, node, 4);
      EXPECT_EQ(counter_bernoulli_pow2(9, node, 4, k),
                stream.bernoulli_pow2(k));
    }
  }
  // k == 0 always succeeds, k >= 64 always fails, regardless of coordinate.
  EXPECT_TRUE(counter_bernoulli_pow2(1, 2, 3, 0));
  EXPECT_FALSE(counter_bernoulli_pow2(1, 2, 3, 64));
  EXPECT_FALSE(counter_bernoulli_pow2(1, 2, 3, 1000));
}

TEST(CounterRng, NeighborCoordinatesDecorrelated) {
  // Statistical sanity across the sponge: adjacent nodes and rounds give
  // draws with no visible bit correlation (avalanche-quality mixing).
  constexpr int kSamples = 4096;
  std::int64_t bit_balance = 0;
  int node_collisions = 0, round_collisions = 0;
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    const std::uint64_t d = counter_first_draw(42, i, 7);
    bit_balance += std::popcount(d);
    node_collisions += d == counter_first_draw(42, i + 1, 7) ? 1 : 0;
    round_collisions += d == counter_first_draw(42, i, 8) ? 1 : 0;
  }
  // Mean popcount 32, stdev 4/sqrt(kSamples): allow +-1.
  EXPECT_NEAR(static_cast<double>(bit_balance) / kSamples, 32.0, 1.0);
  EXPECT_EQ(node_collisions, 0);
  EXPECT_EQ(round_collisions, 0);
}

TEST(CounterRng, Pow2FrequencyTracksProbability) {
  // P(success) = 2^-k exactly; over many nodes the hit rate must match.
  constexpr int kNodes = 1 << 16;
  for (unsigned k : {1u, 3u, 6u}) {
    int hits = 0;
    for (std::uint64_t node = 0; node < kNodes; ++node)
      hits += counter_bernoulli_pow2(123, node, 9, k) ? 1 : 0;
    const double expected = std::ldexp(static_cast<double>(kNodes), -static_cast<int>(k));
    EXPECT_NEAR(hits, expected, 6 * std::sqrt(expected)) << "k=" << k;
  }
}

}  // namespace
}  // namespace beepmis::support
