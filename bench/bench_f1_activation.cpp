/// F1 — reproduces Figure 1 of the paper: the beeping probability p_t(v) as
/// a function of the level ℓ_t(v) (the "activation function").

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/core/lmax.hpp"
#include "src/core/selfstab_mis.hpp"
#include "src/graph/generators.hpp"
#include "src/support/table.hpp"

int main() {
  using namespace beepmis;
  bench::banner("F1: level -> beeping probability (Figure 1)",
                "p = 1 for l <= 0; p = 2^-l for 0 < l < lmax; p = 0 at lmax");

  constexpr std::int32_t kLmax = 10;
  const auto g = graph::GraphBuilder(1).build();
  core::SelfStabMis algo(g, core::LmaxVector{kLmax});

  support::Table t({"level", "p(v)", "plot"});
  for (std::int32_t l = -kLmax; l <= kLmax; ++l) {
    algo.set_level(0, l);
    const double p = algo.beep_probability(0);
    std::string bar(static_cast<std::size_t>(p * 40.0), '#');
    t.row().cell(static_cast<std::int64_t>(l)).cell(p, 6).cell(bar);
  }
  std::cout << t.str();

  std::printf("\nshape check: flat at 1 for l<=0, halves per level in "
              "(0,lmax), exactly 0 at lmax=%d — matches Figure 1.\n", kLmax);
  return 0;
}
