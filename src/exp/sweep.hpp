#pragma once

#include <cstdint>
#include <vector>

#include "src/exp/families.hpp"
#include "src/exp/runner.hpp"
#include "src/obs/digest.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/sink.hpp"
#include "src/support/fit.hpp"
#include "src/support/table.hpp"

namespace beepmis::exp {

/// Aggregated stabilization-time measurements at one (family, n) point.
/// `rounds` is a streaming obs::Digest: exact at the default seed counts
/// (≤ Digest::kExact samples) and fixed-memory for arbitrarily long sweeps;
/// support::SampleSet remains the exact oracle used by the tests.
struct SweepPoint {
  Family family;
  std::size_t n = 0;            ///< actual vertex count of the instance
  obs::Digest rounds;           ///< stabilization rounds across seeds
  std::size_t failures = 0;     ///< runs that did not stabilize in budget
  std::size_t invalid = 0;      ///< runs whose final set was not a valid MIS
};

/// Configuration of a scaling sweep T(n).
struct SweepConfig {
  Variant variant = Variant::GlobalDelta;
  core::InitPolicy init = core::InitPolicy::UniformRandom;
  std::vector<std::size_t> sizes;   ///< n values
  std::size_t seeds = 20;           ///< runs per (family, n)
  std::uint64_t base_seed = 1;
  std::int32_t c1 = 0;              ///< 0 = paper default for the variant
  /// Executor selection, routed through core::make_engine. Auto resolves to
  /// the fast engine for every variant and init policy (proven
  /// round-identical to the reference simulator; see test_fast_engine.cpp),
  /// so sweeps never fall back to the slow path; Reference exists for
  /// cross-checks.
  core::EngineKind engine = core::EngineKind::Auto;
  /// Optional telemetry: per-run wall time ("sweep.run" timer), the
  /// "sweep.rounds_to_stabilize" histogram + quantile digest and sweep.*
  /// counters land here; the fast engines also route their internal timers
  /// and settlement-refresh digests into it.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional per-round event observer, attached to every run regardless of
  /// the engine (simulation or fast path). One obs::RoundEvent per round.
  obs::RoundObserver* observer = nullptr;
};

/// Runs the sweep for one family. Each run gets an independent seed; the
/// graph instance is redrawn per seed for randomized families.
std::vector<SweepPoint> run_scaling_sweep(Family family,
                                          const SweepConfig& config);

/// Renders sweep points as a table: n, mean, median, p95, max, failures.
support::Table sweep_table(const std::vector<SweepPoint>& points);

/// Extracts (n, median rounds) pairs and ranks growth models by R².
std::vector<std::pair<support::GrowthModel, support::FitResult>>
rank_sweep_growth(const std::vector<SweepPoint>& points);

/// Standard size ladder 2^lo .. 2^hi.
std::vector<std::size_t> pow2_sizes(unsigned lo, unsigned hi);

}  // namespace beepmis::exp
