#include "src/obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/fast_engine.hpp"
#include "src/graph/generators.hpp"
#include "src/obs/json_parse.hpp"
#include "src/obs/progress.hpp"
#include "src/obs/trace.hpp"
#include "src/support/task_pool.hpp"

namespace beepmis {
namespace {

// The timeseries phase list is a duplicate of the sharded kernel's phase
// keys (obs cannot depend on core); this pin is the only thing keeping the
// two from drifting apart.
TEST(Telemetry, PhaseKeysPinnedToShardPhases) {
  ASSERT_EQ(obs::kTimeSeriesPhases, core::kShardPhaseCount);
  for (std::size_t p = 0; p < obs::kTimeSeriesPhases; ++p)
    EXPECT_STREQ(obs::kTimeSeriesPhaseKeys[p], core::kShardPhaseKeys[p]);
}

obs::TimeSeriesSample make_sample(std::uint64_t round) {
  obs::TimeSeriesSample s;
  s.round = round;
  s.active = 64 - round;
  s.beeps = round;
  s.mis = round / 2;
  s.round_ms = 0.5;
  s.imbalance = 1.25;
  s.barrier_ms = 0.125;
  s.has_phases = true;
  for (std::size_t p = 0; p < obs::kTimeSeriesPhases; ++p)
    s.phase_ms[p] = 0.0625 * static_cast<double>(p + 1);
  return s;
}

obs::JsonValue series_doc(const obs::TimeSeries& series) {
  std::ostringstream os;
  series.write_json(os);
  obs::JsonValue doc;
  std::string error;
  EXPECT_TRUE(obs::json_parse(os.str(), &doc, &error)) << error;
  return doc;
}

TEST(Telemetry, TimeSeriesRoundTripValidates) {
  obs::TimeSeries series(/*capacity=*/4, /*every=*/2);
  EXPECT_FALSE(series.due(1));
  EXPECT_TRUE(series.due(2));
  series.set_context("algorithm", "V1-global-delta");
  series.set_context("n", "64");
  for (std::uint64_t i = 1; i <= 6; ++i) series.record(make_sample(2 * i));
  EXPECT_EQ(series.recorded(), 6u);
  EXPECT_EQ(series.dropped(), 2u);

  const obs::JsonValue doc = series_doc(series);
  std::string error;
  EXPECT_TRUE(obs::timeseries_validate(doc, &error)) << error;
  EXPECT_EQ(doc.get("schema").as_string(""), "beepmis.timeseries.v1");
  EXPECT_EQ(doc.get("every").as_number(0.0), 2.0);
  EXPECT_EQ(doc.get("context").get("algorithm").as_string(""),
            "V1-global-delta");
  const auto& samples = doc.get("samples").array;
  ASSERT_EQ(samples.size(), 4u);
  // The ring kept the newest four samples, exported oldest-first.
  EXPECT_EQ(samples[0].get("round").as_number(0.0), 6.0);
  EXPECT_EQ(samples[3].get("round").as_number(0.0), 12.0);
  const obs::JsonValue& timing = samples[0].get("timing");
  EXPECT_EQ(timing.get("imbalance").as_number(0.0), 1.25);
  EXPECT_EQ(timing.get("phase_ms").get("decide").as_number(0.0), 0.0625);
}

TEST(Telemetry, TimeSeriesCanonicalStripsTiming) {
  obs::TimeSeries series(8, 1);
  series.set_context("n", "64");
  for (std::uint64_t r = 1; r <= 3; ++r) series.record(make_sample(r));
  const obs::JsonValue doc = series_doc(series);

  std::ostringstream canon;
  std::string error;
  ASSERT_TRUE(obs::timeseries_write_canonical(doc, canon, &error)) << error;
  obs::JsonValue projected;
  ASSERT_TRUE(obs::json_parse(canon.str(), &projected, &error)) << error;
  ASSERT_EQ(projected.get("samples").array.size(), 3u);
  for (const obs::JsonValue& s : projected.get("samples").array) {
    EXPECT_FALSE(s.has("timing"));
    EXPECT_TRUE(s.has("round"));
    EXPECT_TRUE(s.has("active"));
    EXPECT_TRUE(s.has("beeps"));
    EXPECT_TRUE(s.has("mis"));
  }
  // The deterministic fields survive the projection unchanged.
  EXPECT_EQ(projected.get("samples").array[2].get("round").as_number(0.0),
            3.0);
}

TEST(Telemetry, TimeSeriesValidateRejectsMutations) {
  obs::TimeSeries series(8, 1);
  for (std::uint64_t r = 1; r <= 2; ++r) series.record(make_sample(r));
  const obs::JsonValue good = series_doc(series);
  ASSERT_TRUE(obs::timeseries_validate(good));

  obs::JsonValue bad = good;
  bad.object["schema"].str = "beepmis.timeseries.v2";
  EXPECT_FALSE(obs::timeseries_validate(bad));

  bad = good;
  bad.object["samples"].array[0].object.erase("round");
  EXPECT_FALSE(obs::timeseries_validate(bad));

  bad = good;
  bad.object["samples"].array[1].object.erase("timing");
  EXPECT_FALSE(obs::timeseries_validate(bad));

  bad = good;
  bad.object["samples"].array[0].object["active"].type =
      obs::JsonValue::Type::String;
  EXPECT_FALSE(obs::timeseries_validate(bad));

  // phase_ms may be sparse (it is empty when no shard telemetry contributed)
  // but every value present must be a number.
  bad = good;
  bad.object["samples"].array[0].object["timing"].object["phase_ms"]
      .object["fold"].type = obs::JsonValue::Type::String;
  EXPECT_FALSE(obs::timeseries_validate(bad));

  bad = good;
  bad.object.erase("context");
  EXPECT_FALSE(obs::timeseries_validate(bad));

  // A rejected document never writes a canonical projection.
  std::ostringstream os;
  EXPECT_FALSE(obs::timeseries_write_canonical(bad, os));
}

obs::ProgressSample make_beat(std::uint64_t round) {
  obs::ProgressSample s;
  s.round = round;
  s.budget = 1000;
  s.active = 100 - round;
  s.mis = round / 4;
  s.rounds_per_sec = 2048.0;
  s.eta_s = 0.5;
  s.imbalance = 1.5;
  s.peak_rss_bytes = 1 << 20;
  s.trace_dropped = 0;
  return s;
}

TEST(Telemetry, ProgressLineRoundTripAndCanonical) {
  std::ostringstream os;
  obs::progress_write_line(os, make_beat(64));
  obs::JsonValue line;
  std::string error;
  ASSERT_TRUE(obs::json_parse(os.str(), &line, &error)) << error;
  EXPECT_TRUE(obs::progress_validate_line(line, &error)) << error;
  EXPECT_EQ(line.get("schema").as_string(""), "beepmis.progress.v1");
  EXPECT_EQ(line.get("round").as_number(0.0), 64.0);
  EXPECT_EQ(line.get("timing").get("rounds_per_sec").as_number(0.0), 2048.0);

  std::ostringstream canon;
  ASSERT_TRUE(obs::progress_write_canonical_line(line, canon, &error))
      << error;
  obs::JsonValue projected;
  ASSERT_TRUE(obs::json_parse(canon.str(), &projected, &error)) << error;
  EXPECT_FALSE(projected.has("timing"));
  EXPECT_EQ(projected.get("budget").as_number(0.0), 1000.0);

  obs::JsonValue bad = line;
  bad.object["schema"].str = "beepmis.progress.v2";
  EXPECT_FALSE(obs::progress_validate_line(bad));
  bad = line;
  bad.object.erase("budget");
  EXPECT_FALSE(obs::progress_validate_line(bad));
  bad = line;
  bad.object["timing"].object.erase("eta_s");
  EXPECT_FALSE(obs::progress_validate_line(bad));
}

TEST(Telemetry, ProgressWriterKeepsRingAndLatchesErrors) {
  const std::string path = ::testing::TempDir() + "beepmis_progress_test.jsonl";
  {
    obs::ProgressWriter writer(path, /*keep=*/3);
    for (std::uint64_t r = 1; r <= 5; ++r) writer.beat(make_beat(r * 10));
    ASSERT_TRUE(writer.ok()) << writer.error();
    EXPECT_EQ(writer.beats(), 5u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<double> rounds;
  std::string text;
  while (std::getline(in, text)) {
    obs::JsonValue line;
    std::string error;
    ASSERT_TRUE(obs::json_parse(text, &line, &error)) << error;
    ASSERT_TRUE(obs::progress_validate_line(line, &error)) << error;
    rounds.push_back(line.get("round").as_number(0.0));
  }
  // The file holds exactly the newest `keep` heartbeats, oldest first — the
  // atomic-replace rewrite means a reader never sees more, less, or a torn
  // line.
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_EQ(rounds[0], 30.0);
  EXPECT_EQ(rounds[2], 50.0);
  std::remove(path.c_str());

  obs::ProgressWriter broken("/nonexistent-dir/progress.jsonl");
  broken.beat(make_beat(1));
  EXPECT_FALSE(broken.ok());
  EXPECT_FALSE(broken.error().empty());
  broken.beat(make_beat(2));  // latched: later beats are no-ops, not crashes
  EXPECT_EQ(broken.beats(), 1u);
}

// A private labeled pool constructed while no tracing session is live must
// still be picked up when a session starts later: Tracer::enable refreshes
// the process-wide TaskPool observer, so the pool's spawned workers get
// "<label>-worker-N" tracks and per-claim pool.task spans.
TEST(Telemetry, PrivatePoolObserverRefreshAcrossTracerSessions) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.disable();
  support::TaskPool pool(3, "shard");
  std::vector<int> hit(16, 0);
  auto batch = [&] {
    pool.parallel_for(hit.size(), [&](std::size_t i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      hit[i] += 1;
    });
  };
  batch();  // session off: no observer, nothing recorded

  tracer.clear_context();
  tracer.enable(4096, 0);
  obs::Tracer::set_thread_label("main");
  batch();  // session on: the pre-existing pool is now observed
  tracer.disable();
  for (int h : hit) EXPECT_EQ(h, 2);

  std::ostringstream os;
  tracer.write_json(os);
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(os.str(), &doc, &error)) << error;
  std::size_t task_spans = 0;
  bool saw_shard_worker = false;
  for (const obs::JsonValue& t : doc.get("threads").array) {
    if (t.get("label").as_string("").rfind("shard-worker-", 0) == 0)
      saw_shard_worker = true;
    for (const obs::JsonValue& ev : t.get("events").array)
      if (ev.get("name").as_string("") == "pool.task") ++task_spans;
  }
  // Only the in-session batch leaves spans: one claim per task.
  EXPECT_EQ(task_spans, hit.size());
  EXPECT_TRUE(saw_shard_worker);
}

std::vector<std::int32_t> levels_of(const core::Engine& e) {
  std::vector<std::int32_t> out(e.graph().vertex_count());
  for (graph::VertexId v = 0; v < out.size(); ++v) out[v] = e.level(v);
  return out;
}

// The ≤2% contract's correctness half: forcing per-round ShardTelemetry
// collection must not perturb a single level, settlement, or MIS member —
// the telemetry layer only reads clocks and shard-owned tallies.
TEST(Telemetry, ShardedResultsIdenticalWithTelemetryOnOrOff) {
  support::Rng grng(77);
  const auto g = graph::make_erdos_renyi_avg_degree(256, 8.0, grng);
  const auto lmax = core::lmax_global_delta(g);
  core::FastMisEngine bare(g, lmax, 99, {}, beep::Duplex::Full,
                           core::KernelKind::Sharded, /*shard_threads=*/4,
                           /*phase_telemetry=*/false);
  core::FastMisEngine instrumented(g, lmax, 99, {}, beep::Duplex::Full,
                                   core::KernelKind::Sharded,
                                   /*shard_threads=*/4,
                                   /*phase_telemetry=*/true);
  support::Rng c1(5), c2(5);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v) bare.corrupt(v, c1);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
    instrumented.corrupt(v, c2);

  core::ShardTelemetry before;
  ASSERT_FALSE(bare.shard_telemetry(&before))
      << "telemetry off must report no data";

  for (int r = 0; r < 200; ++r) {
    bare.step();
    instrumented.step();
    ASSERT_EQ(levels_of(instrumented), levels_of(bare)) << "round " << r;
    ASSERT_EQ(instrumented.active_count(), bare.active_count());
  }
  EXPECT_EQ(instrumented.mis_members(), bare.mis_members());
  EXPECT_EQ(instrumented.is_stabilized(), bare.is_stabilized());

  core::ShardTelemetry tel;
  ASSERT_TRUE(instrumented.shard_telemetry(&tel));
  EXPECT_EQ(tel.rounds, 200u);
  EXPECT_GT(tel.shards, 0u);
  EXPECT_GT(tel.busy_ms, 0.0);
  EXPECT_GE(tel.max_busy_ms * static_cast<double>(tel.shards), tel.busy_ms);
  EXPECT_GE(tel.imbalance(), 1.0);
  double phase_total = 0.0;
  for (std::size_t p = 0; p < core::kShardPhaseCount; ++p)
    phase_total += tel.phase_ms[p];
  EXPECT_GT(phase_total, 0.0);
}

}  // namespace
}  // namespace beepmis
