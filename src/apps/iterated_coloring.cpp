#include "src/apps/iterated_coloring.hpp"

#include <algorithm>
#include <set>

#include "src/support/check.hpp"

namespace beepmis::apps {

IteratedJsxColoring::IteratedJsxColoring(const graph::Graph& g,
                                         std::uint32_t epoch_length)
    : graph_(&g), epoch_length_(epoch_length) {
  BEEPMIS_CHECK(epoch_length_ >= 4 && epoch_length_ % 2 == 0,
                "epoch length must be even and >= 4");
  const std::size_t n = g.vertex_count();
  colored_.assign(n, 0);
  color_.assign(n, 0);
  exponent_.assign(n, 1);
  joined_.assign(n, 0);
  suppressed_.assign(n, 0);
  heard_in_a_.assign(n, 0);
}

void IteratedJsxColoring::decide_beeps(beep::Round round,
                                       std::span<support::Rng> rngs,
                                       std::span<beep::ChannelMask> send) {
  const auto epoch = static_cast<std::uint32_t>(round / epoch_length_);
  const std::uint64_t offset = round % epoch_length_;
  const bool compete_round = (offset % 2) == 0;
  const std::size_t n = colored_.size();

  if (offset == 0) {
    // Epoch boundary: everyone still uncoloured re-enters the competition
    // with a fresh JSX state.
    for (std::size_t v = 0; v < n; ++v) {
      if (colored_[v]) continue;
      exponent_[v] = 1;
      joined_[v] = 0;
      suppressed_[v] = 0;
      heard_in_a_[v] = 0;
    }
  }

  for (std::size_t v = 0; v < n; ++v) {
    bool beep = false;
    if (compete_round) {
      if (!colored_[v] && !suppressed_[v])
        beep = rngs[v].bernoulli_pow2(exponent_[v]);
    } else {
      // Notify: this epoch's winners (and fresh joiners) suppress their
      // neighborhood for the rest of the epoch.
      beep = joined_[v] || (colored_[v] && color_[v] == epoch);
    }
    send[v] = beep ? beep::kChannel1 : 0;
  }
}

void IteratedJsxColoring::receive_feedback(
    beep::Round round, std::span<const beep::ChannelMask> sent,
    std::span<const beep::ChannelMask> heard) {
  const auto epoch = static_cast<std::uint32_t>(round / epoch_length_);
  const bool compete_round = (round % 2) == 0;
  const std::size_t n = colored_.size();
  for (std::size_t v = 0; v < n; ++v) {
    const bool b = sent[v] & beep::kChannel1;
    const bool h = heard[v] & beep::kChannel1;
    if (compete_round) {
      if (!colored_[v] && !suppressed_[v]) {
        if (b && !h) joined_[v] = 1;
        heard_in_a_[v] = h ? 1 : 0;
      }
      continue;
    }
    // Notify round.
    if (joined_[v]) {
      colored_[v] = 1;
      color_[v] = epoch;
      joined_[v] = 0;
    } else if (!colored_[v] && !suppressed_[v]) {
      if (h) {
        suppressed_[v] = 1;  // a neighbor took this epoch's colour
      } else if (heard_in_a_[v]) {
        exponent_[v] = std::min<std::uint32_t>(exponent_[v] + 1, 62);
      } else {
        exponent_[v] = std::max<std::uint32_t>(exponent_[v] - 1, 1);
      }
    }
  }
}

void IteratedJsxColoring::corrupt_node(graph::VertexId v, support::Rng& rng) {
  colored_[v] = static_cast<std::uint8_t>(rng.below(2));
  color_[v] = static_cast<std::uint32_t>(rng.below(32));
  exponent_[v] = static_cast<std::uint32_t>(1 + rng.below(20));
  joined_[v] = static_cast<std::uint8_t>(rng.below(2));
  suppressed_[v] = static_cast<std::uint8_t>(rng.below(2));
  heard_in_a_[v] = static_cast<std::uint8_t>(rng.below(2));
}

bool IteratedJsxColoring::complete() const {
  return std::all_of(colored_.begin(), colored_.end(),
                     [](std::uint8_t c) { return c != 0; });
}

std::uint32_t IteratedJsxColoring::colors_used() const {
  std::set<std::uint32_t> used;
  for (std::size_t v = 0; v < colored_.size(); ++v)
    if (colored_[v]) used.insert(color_[v]);
  return static_cast<std::uint32_t>(used.size());
}

}  // namespace beepmis::apps
