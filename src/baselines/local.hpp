#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/support/rng.hpp"

namespace beepmis::local {

/// One broadcast message: a single 64-bit word per node per round. This is
/// deliberately a *much* stronger model than beeping — each node delivers a
/// full word to every neighbor and receives every neighbor's word
/// individually. It exists to host message-passing comparators (Luby) that
/// the paper's introduction contrasts the beeping model with.
using Message = std::uint64_t;

/// A synchronous message-passing (broadcast-LOCAL) algorithm, stored
/// struct-of-arrays like beep::BeepingAlgorithm.
class LocalAlgorithm {
 public:
  virtual ~LocalAlgorithm() = default;
  virtual std::string name() const = 0;
  virtual std::size_t node_count() const = 0;
  /// Phase 1: out[v] = the word v broadcasts this round.
  virtual void compose(std::uint64_t round, std::span<support::Rng> rngs,
                       std::span<Message> out) = 0;
  /// Phase 2: for node v, inbox(v) spans the words of v's neighbors in
  /// graph-neighbor order.
  virtual void deliver(std::uint64_t round,
                       std::span<const Message> all_sent) = 0;
};

/// Synchronous engine for the broadcast-LOCAL model. Mirrors
/// beep::Simulation: deterministic per-node RNG streams from a master seed.
class LocalSimulation {
 public:
  LocalSimulation(const graph::Graph& g, std::unique_ptr<LocalAlgorithm> algo,
                  std::uint64_t seed);

  const graph::Graph& graph() const noexcept { return *graph_; }
  LocalAlgorithm& algorithm() noexcept { return *algo_; }
  std::uint64_t round() const noexcept { return round_; }

  void step();

 private:
  const graph::Graph* graph_;
  std::unique_ptr<LocalAlgorithm> algo_;
  std::vector<support::Rng> rngs_;
  std::vector<Message> sent_;
  std::uint64_t round_ = 0;
};

}  // namespace beepmis::local
