#include "src/obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "src/obs/json.hpp"
#include "src/obs/pool_hook.hpp"

namespace beepmis::obs {
namespace {

// Sticky track label for the calling thread, applied when (not if) the
// thread registers a ring buffer — so labeling works whether the label is
// set before or after enable(), and survives across sessions.
thread_local std::string t_pending_label;  // NOLINT(runtime/string)

bool export_fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(std::size_t capacity_per_thread,
                    std::uint64_t counter_every) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  capacity_ = capacity_per_thread == 0 ? 1 : capacity_per_thread;
  epoch_ = Clock::now();
  counter_every_.store(counter_every, std::memory_order_relaxed);
  // Release-publish: a recorder that acquire-loads the new session id sees
  // epoch_ and capacity_ from this critical section.
  session_.store(++next_session_, std::memory_order_release);
  // The pool observer is shared with the perf profiler; the hook installs
  // or removes it based on which sessions are live.
  detail::refresh_pool_observer();
}

void Tracer::disable() {
  session_.store(0, std::memory_order_relaxed);
  detail::refresh_pool_observer();
}

Tracer::ThreadBuffer* Tracer::current_buffer() {
  struct Slot {
    ThreadBuffer* buf = nullptr;
    std::uint64_t session = 0;
  };
  thread_local Slot slot;
  const std::uint64_t live = session_.load(std::memory_order_acquire);
  if (live == 0) return nullptr;
  if (slot.session == live) return slot.buf;  // steady state: no lock

  // First record of this thread in this session: register a ring buffer.
  std::lock_guard<std::mutex> lock(mu_);
  if (session_.load(std::memory_order_relaxed) != live) return nullptr;
  auto owned = std::make_unique<ThreadBuffer>();
  ThreadBuffer* buf = owned.get();
  buf->ring.resize(capacity_);
  buf->tid = static_cast<std::uint64_t>(buffers_.size());
  buf->label = !t_pending_label.empty()
                   ? t_pending_label
                   : "thread-" + std::to_string(buf->tid);
  buffers_.push_back(std::move(owned));
  slot.buf = buf;
  slot.session = live;
  return buf;
}

void Tracer::record(const TraceRecord& r) {
  ThreadBuffer* buf = current_buffer();
  if (buf == nullptr) return;
  buf->ring[buf->head] = r;
  buf->head = buf->head + 1 == buf->ring.size() ? 0 : buf->head + 1;
  ++buf->recorded;
}

void Tracer::complete(const char* name, Clock::time_point start,
                      Clock::time_point end, std::uint64_t arg,
                      bool has_arg) {
  Tracer& t = instance();
  if (t.session_.load(std::memory_order_acquire) == 0) return;
  TraceRecord r;
  r.kind = TraceRecord::Kind::Span;
  r.name = name;
  r.ts_ns = since_epoch_ns(start, t.epoch_);
  r.dur_ns = end <= start ? 0 : since_epoch_ns(end, start);
  r.arg = arg;
  r.has_arg = has_arg;
  t.record(r);
}

void Tracer::counter(const char* name, double value) {
  Tracer& t = instance();
  if (t.session_.load(std::memory_order_acquire) == 0) return;
  TraceRecord r;
  r.kind = TraceRecord::Kind::Counter;
  r.name = name;
  r.ts_ns = since_epoch_ns(Clock::now(), t.epoch_);
  r.value = value;
  t.record(r);
}

void Tracer::instant(const char* name, std::uint64_t arg, bool has_arg) {
  Tracer& t = instance();
  if (t.session_.load(std::memory_order_acquire) == 0) return;
  TraceRecord r;
  r.kind = TraceRecord::Kind::Instant;
  r.name = name;
  r.ts_ns = since_epoch_ns(Clock::now(), t.epoch_);
  r.arg = arg;
  r.has_arg = has_arg;
  t.record(r);
}

void Tracer::set_thread_label(std::string label) {
  t_pending_label = std::move(label);
  Tracer& t = instance();
  if (t.session_.load(std::memory_order_acquire) == 0) return;
  // Already registered in the live session: rename the existing track.
  if (ThreadBuffer* buf = t.current_buffer()) {
    std::lock_guard<std::mutex> lock(t.mu_);
    buf->label = t_pending_label;
  }
}

void Tracer::set_context(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : context_) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  context_.emplace_back(key, value);
}

void Tracer::clear_context() {
  std::lock_guard<std::mutex> lock(mu_);
  context_.clear();
}

std::uint64_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& buf : buffers_)
    if (buf->recorded > buf->ring.size())
      dropped += buf->recorded - buf->ring.size();
  return dropped;
}

std::vector<TraceRecord> Tracer::thread_tail(std::size_t max) {
  std::vector<TraceRecord> out;
  ThreadBuffer* buf = current_buffer();
  if (buf == nullptr || max == 0) return out;
  const std::size_t cap = buf->ring.size();
  const std::size_t have =
      buf->recorded < cap ? static_cast<std::size_t>(buf->recorded) : cap;
  const std::size_t take = std::min(max, have);
  out.reserve(take);
  for (std::size_t k = 0; k < take; ++k)
    out.push_back(buf->ring[(buf->head + cap - take + k) % cap]);
  return out;
}

void trace_write_event(JsonWriter& w, const TraceRecord& r) {
  w.begin_object();
  switch (r.kind) {
    case TraceRecord::Kind::Span:
      w.field("ph", "X");
      w.field("name", r.name);
      w.field("ts_ns", r.ts_ns);
      w.field("dur_ns", r.dur_ns);
      if (r.has_arg) w.field("arg", r.arg);
      break;
    case TraceRecord::Kind::Counter:
      w.field("ph", "C");
      w.field("name", r.name);
      w.field("ts_ns", r.ts_ns);
      w.field("value", r.value);
      break;
    case TraceRecord::Kind::Instant:
      w.field("ph", "i");
      w.field("name", r.name);
      w.field("ts_ns", r.ts_ns);
      if (r.has_arg) w.field("arg", r.arg);
      break;
  }
  w.end_object();
}

void Tracer::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped_total = 0;
  for (const auto& buf : buffers_)
    if (buf->recorded > buf->ring.size())
      dropped_total += buf->recorded - buf->ring.size();

  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "beepmis.trace.v1");
  w.field("capacity_per_thread", static_cast<std::uint64_t>(capacity_));
  w.field("counter_every", counter_every_.load(std::memory_order_relaxed));
  w.field("dropped_total", dropped_total);
  w.key("context").begin_object();
  for (const auto& kv : context_) w.field(kv.first, kv.second);
  w.end_object();
  w.key("threads").begin_array();
  for (const auto& buf : buffers_) {
    const std::size_t cap = buf->ring.size();
    const bool wrapped = buf->recorded > cap;
    const std::size_t have =
        wrapped ? cap : static_cast<std::size_t>(buf->recorded);
    const std::size_t first = wrapped ? buf->head : 0;
    w.begin_object();
    w.field("tid", buf->tid);
    w.field("label", buf->label);
    w.field("recorded", buf->recorded);
    w.field("dropped",
            wrapped ? buf->recorded - cap : std::uint64_t{0});
    w.key("events").begin_array();
    for (std::size_t k = 0; k < have; ++k)
      trace_write_event(w, buf->ring[(first + k) % cap]);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

bool trace_export_chrome(const JsonValue& trace, std::ostream& os,
                         std::string* error) {
  if (!trace.is_object() ||
      trace.get("schema").as_string() != "beepmis.trace.v1")
    return export_fail(error, "not a beepmis.trace.v1 document");
  const JsonValue& threads = trace.get("threads");
  if (!threads.is_array())
    return export_fail(error, "trace.v1: \"threads\" must be an array");

  const std::uint64_t kPid = 1;
  JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();
  w.begin_object();
  w.field("ph", "M").field("pid", kPid).field("name", "process_name");
  w.key("args").begin_object().field("name", "beepmis").end_object();
  w.end_object();

  for (const JsonValue& th : threads.array) {
    if (!th.is_object())
      return export_fail(error, "trace.v1: thread entry must be an object");
    const std::uint64_t tid =
        static_cast<std::uint64_t>(th.get("tid").as_number(0.0));
    const std::string label =
        th.get("label").as_string("thread-" + std::to_string(tid));
    w.begin_object();
    w.field("ph", "M").field("pid", kPid).field("tid", tid);
    w.field("name", "thread_name");
    w.key("args").begin_object().field("name", label).end_object();
    w.end_object();

    const JsonValue& events = th.get("events");
    if (!events.is_array())
      return export_fail(error,
                         "trace.v1: thread \"events\" must be an array");
    for (const JsonValue& ev : events.array) {
      const std::string ph = ev.get("ph").as_string();
      const std::string name = ev.get("name").as_string();
      if (name.empty())
        return export_fail(error, "trace.v1: event without a name");
      // Chrome's trace_event clock is microseconds; keep full ns precision
      // as a fractional value.
      const double ts_us = ev.get("ts_ns").as_number(0.0) / 1000.0;
      w.begin_object();
      w.field("ph", ph).field("pid", kPid).field("tid", tid);
      w.field("cat", "beepmis").field("name", name).field("ts", ts_us);
      if (ph == "X") {
        w.field("dur", ev.get("dur_ns").as_number(0.0) / 1000.0);
        if (ev.has("arg")) {
          w.key("args").begin_object();
          w.field("arg", ev.get("arg").as_number(0.0));
          w.end_object();
        }
      } else if (ph == "C") {
        w.key("args").begin_object();
        w.field("value", ev.get("value").as_number(0.0));
        w.end_object();
      } else if (ph == "i") {
        w.field("s", "t");  // thread-scoped instant
        if (ev.has("arg")) {
          w.key("args").begin_object();
          w.field("arg", ev.get("arg").as_number(0.0));
          w.end_object();
        }
      } else {
        return export_fail(error,
                           "trace.v1: unknown event phase \"" + ph + "\"");
      }
      w.end_object();
    }
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  const JsonValue& ctx = trace.get("context");
  if (ctx.is_object())
    for (const auto& kv : ctx.object) w.field(kv.first, kv.second.as_string());
  w.end_object();
  w.end_object();
  os << '\n';
  return true;
}

}  // namespace beepmis::obs
