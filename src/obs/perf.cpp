#include "src/obs/perf.hpp"

#include <algorithm>
#include <ostream>

#include "src/obs/json.hpp"
#include "src/obs/pool_hook.hpp"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace beepmis::obs {
namespace {

constexpr std::array<const char*, PerfGroup::kCounters> kCounterNames = {
    "cycles",        "instructions", "cache_references", "cache_misses",
    "branches",      "branch_misses", "task_clock_ns",
};
constexpr std::size_t kTaskClock = 6;  // software fallback leader slot

}  // namespace

const char* PerfGroup::counter_name(std::size_t index) noexcept {
  return index < kCounters ? kCounterNames[index] : "?";
}

#ifdef __linux__

namespace {

struct CounterSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr std::array<CounterSpec, PerfGroup::kCounters> kSpecs = {{
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
}};

/// perf_event_open with the group-read format this module relies on.
/// Counters start enabled and count this thread only (pid=0, cpu=-1, no
/// inherit); exclude_kernel/hv keeps the open permissible at
/// perf_event_paranoid <= 2, the common unprivileged setting.
int open_counter(const CounterSpec& spec, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = spec.type;
  attr.config = spec.config;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                     PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      syscall(__NR_perf_event_open, &attr, 0, -1, group_fd, 0));
}

}  // namespace

bool PerfGroup::open() {
  close();
  fd_.fill(-1);
  id_.fill(0);

  // Leader: hardware cycles when the host has a PMU; PMU-less VMs and
  // containers (ENOENT) fall back to the software task clock so the group
  // still carries scheduling-aware timing evidence.
  std::size_t leader_slot = 0;
  int leader = open_counter(kSpecs[0], -1);
  if (leader < 0) {
    leader_slot = kTaskClock;
    leader = open_counter(kSpecs[kTaskClock], -1);
  }
  if (leader < 0) return false;
  leader_ = leader;
  fd_[leader_slot] = leader;
  mask_ = 1u << leader_slot;

  for (std::size_t i = 0; i < kCounters; ++i) {
    if (i == leader_slot) continue;
    const int fd = open_counter(kSpecs[i], leader);
    if (fd < 0) continue;  // denied or unsupported: skip, don't fail
    fd_[i] = fd;
    mask_ |= 1u << i;
  }
  for (std::size_t i = 0; i < kCounters; ++i)
    if (fd_[i] >= 0 &&
        ioctl(fd_[i], PERF_EVENT_IOC_ID, &id_[i]) != 0) {
      ::close(fd_[i]);
      fd_[i] = -1;
      mask_ &= ~(1u << i);
    }
  if ((mask_ & (1u << leader_slot)) == 0) {
    close();
    return false;
  }
  return true;
}

void PerfGroup::close() {
  for (int& fd : fd_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  leader_ = -1;
  mask_ = 0;
}

bool PerfGroup::read(Reading* out) {
  out->value.fill(0.0);
  if (leader_ < 0) return false;

  struct {
    std::uint64_t nr;
    std::uint64_t time_enabled;
    std::uint64_t time_running;
    struct {
      std::uint64_t value;
      std::uint64_t id;
    } v[kCounters];
  } buf;
  const ssize_t got = ::read(leader_, &buf, sizeof buf);
  if (got < 0 || buf.nr > kCounters) {
    close();  // degraded, not fatal: later reads report false
    return false;
  }
  // Multiplexing scale: when the kernel time-shared the PMU, estimate the
  // full-period count as value * enabled/running (the standard perf(1)
  // extrapolation). running == 0 means the group never ran: all zeros.
  const double scale =
      buf.time_running == 0
          ? 0.0
          : static_cast<double>(buf.time_enabled) /
                static_cast<double>(buf.time_running);
  for (std::uint64_t k = 0; k < buf.nr; ++k) {
    for (std::size_t i = 0; i < kCounters; ++i) {
      if ((mask_ & (1u << i)) != 0 && id_[i] == buf.v[k].id) {
        out->value[i] = static_cast<double>(buf.v[k].value) * scale;
        break;
      }
    }
  }
  return true;
}

#else  // !__linux__

bool PerfGroup::open() { return false; }
void PerfGroup::close() {}
bool PerfGroup::read(Reading* out) {
  out->value.fill(0.0);
  return false;
}

#endif  // __linux__

PerfGroup::~PerfGroup() { close(); }

PerfSession& PerfSession::instance() {
  static PerfSession session;
  return session;
}

void PerfSession::enable(std::uint64_t sample_every) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.clear();
    sample_every_.store(sample_every == 0 ? 1 : sample_every,
                        std::memory_order_relaxed);
    enabled_once_ = true;
    // One probe group decides availability for the whole session; each
    // recording thread still opens its own group (fds are per-thread).
    PerfGroup probe;
    available_ = probe.open();
    mask_ = probe.mask();
    probe.close();
    // Release-publish, same protocol as Tracer::enable: recorders that
    // acquire-load the session id see the cleared shard registry. An
    // unavailable session stays inert (session_ == 0) — every scope site
    // costs one relaxed load and nothing else.
    session_.store(available_ ? ++next_session_ : 0,
                   std::memory_order_release);
  }
  detail::refresh_pool_observer();
}

void PerfSession::disable() {
  session_.store(0, std::memory_order_relaxed);
  detail::refresh_pool_observer();
}

PerfSession::ThreadShard* PerfSession::current_shard() {
  struct Slot {
    ThreadShard* shard = nullptr;
    std::uint64_t session = 0;
  };
  thread_local Slot slot;
  const std::uint64_t live = session_.load(std::memory_order_acquire);
  if (live == 0) return nullptr;
  if (slot.session == live) return slot.shard;

  std::lock_guard<std::mutex> lock(mu_);
  if (session_.load(std::memory_order_relaxed) != live) return nullptr;
  auto owned = std::make_unique<ThreadShard>();
  ThreadShard* shard = owned.get();
  shard->group_open = shard->group.open();  // on this thread: fds are ours
  shards_.push_back(std::move(owned));
  slot.shard = shard;
  slot.session = live;
  return shard;
}

bool PerfSession::begin(PerfGroup::Reading* start) {
  PerfSession& s = instance();
  if (s.session_.load(std::memory_order_relaxed) == 0) return false;
  ThreadShard* shard = s.current_shard();
  if (shard == nullptr || !shard->group_open) return false;
  return shard->group.read(start);
}

void PerfSession::end(const char* name, const PerfGroup::Reading& start) {
  PerfSession& s = instance();
  ThreadShard* shard = s.current_shard();
  if (shard == nullptr || !shard->group_open) return;
  PerfGroup::Reading now;
  if (!shard->group.read(&now)) return;
  SpanStats& stats = shard->spans[name];
  const std::uint32_t mask = shard->group.mask();
  for (std::size_t i = 0; i < PerfGroup::kCounters; ++i) {
    if ((mask & (1u << i)) == 0) continue;
    const double delta = now.value[i] - start.value[i];
    stats.per_counter[i].add(delta < 0.0 ? 0.0 : delta);
  }
}

void PerfSession::set_context(const std::string& key,
                              const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : context_) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  context_.emplace_back(key, value);
}

void PerfSession::clear_context() {
  std::lock_guard<std::mutex> lock(mu_);
  context_.clear();
}

void PerfSession::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);

  // Merge shards by span *content* (different TUs may intern the same
  // literal at different addresses) in registration order — deterministic
  // because export runs while recorders are quiescent.
  std::map<std::string, SpanStats> merged;
  std::uint32_t mask = 0;
  for (const auto& shard : shards_) {
    if (!shard->group_open) continue;
    mask |= shard->group.mask();
    for (const auto& [name, stats] : shard->spans) {
      SpanStats& into = merged[name];
      for (std::size_t i = 0; i < PerfGroup::kCounters; ++i)
        into.per_counter[i].merge(stats.per_counter[i]);
    }
  }
  if (mask == 0) mask = mask_;  // nothing recorded: report the probe result

  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "beepmis.profile.v1");
  w.field("available", available_);
  w.field("sample_every", sample_every_.load(std::memory_order_relaxed));
  w.key("counters").begin_array();
  for (std::size_t i = 0; i < PerfGroup::kCounters; ++i)
    if ((mask & (1u << i)) != 0) w.value(PerfGroup::counter_name(i));
  w.end_array();
  w.key("context").begin_object();
  for (const auto& kv : context_) w.field(kv.first, kv.second);
  w.end_object();
  w.key("spans").begin_object();
  for (const auto& [name, stats] : merged) {
    w.key(name).begin_object();
    for (std::size_t i = 0; i < PerfGroup::kCounters; ++i) {
      if ((mask & (1u << i)) == 0) continue;
      const Digest& d = stats.per_counter[i];
      if (d.count() == 0) continue;
      w.key(PerfGroup::counter_name(i)).begin_object();
      w.field("count", static_cast<std::uint64_t>(d.count()));
      w.field("sum", d.sum());
      w.field("mean", d.mean());
      w.field("min", d.min());
      w.field("max", d.max());
      w.field("p50", d.quantile(0.50));
      w.field("p90", d.quantile(0.90));
      w.field("p95", d.quantile(0.95));
      w.field("p99", d.quantile(0.99));
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

namespace {

bool validate_fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

bool is_known_counter(const std::string& name) {
  for (std::size_t i = 0; i < PerfGroup::kCounters; ++i)
    if (name == PerfGroup::counter_name(i)) return true;
  return false;
}

}  // namespace

bool profile_validate(const JsonValue& doc, std::string* error,
                      std::size_t* span_count, std::size_t* counter_count) {
  if (!doc.is_object() ||
      doc.get("schema").as_string() != "beepmis.profile.v1")
    return validate_fail(error, "not a beepmis.profile.v1 document");
  if (doc.get("available").type != JsonValue::Type::Bool)
    return validate_fail(error, "profile.v1: \"available\" must be a bool");
  if (doc.get("sample_every").type != JsonValue::Type::Number)
    return validate_fail(error,
                         "profile.v1: \"sample_every\" must be a number");
  const JsonValue& counters = doc.get("counters");
  if (!counters.is_array())
    return validate_fail(error, "profile.v1: \"counters\" must be an array");
  for (const JsonValue& c : counters.array) {
    if (c.type != JsonValue::Type::String || !is_known_counter(c.str))
      return validate_fail(error, "profile.v1: unknown counter \"" +
                                      c.as_string("<non-string>") + "\"");
  }
  if (!doc.get("context").is_object())
    return validate_fail(error, "profile.v1: \"context\" must be an object");
  const JsonValue& spans = doc.get("spans");
  if (!spans.is_object())
    return validate_fail(error, "profile.v1: \"spans\" must be an object");
  if (!doc.get("available").boolean && !spans.object.empty())
    return validate_fail(
        error, "profile.v1: unavailable session must have no spans");
  for (const auto& [span, stats] : spans.object) {
    if (!stats.is_object())
      return validate_fail(error, "profile.v1: span \"" + span +
                                      "\" is not an object");
    for (const auto& [counter, d] : stats.object) {
      const std::string where = "profile.v1: " + span + "." + counter;
      bool listed = false;
      for (const JsonValue& c : counters.array)
        if (c.as_string() == counter) listed = true;
      if (!listed)
        return validate_fail(error,
                             where + ": counter not in \"counters\" list");
      if (!d.is_object())
        return validate_fail(error, where + ": stats must be an object");
      for (const char* field :
           {"count", "sum", "mean", "min", "max", "p50", "p90", "p95",
            "p99"}) {
        if (d.get(field).type != JsonValue::Type::Number)
          return validate_fail(error, where + ": missing numeric \"" +
                                          field + "\"");
      }
    }
  }
  if (span_count != nullptr) *span_count = spans.object.size();
  if (counter_count != nullptr) *counter_count = counters.array.size();
  return true;
}

}  // namespace beepmis::obs
