#pragma once

#include <cstdint>
#include <limits>

namespace beepmis::support {

/// SplitMix64 step: the canonical 64-bit mixer, used both as a stream
/// splitter (deriving independent per-node seeds from a master seed) and to
/// seed xoshiro256** state. Reference: Steele, Lea, Flood (2014).
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic xoshiro256** PRNG (Blackman & Vigna).
///
/// Every random decision in the simulator flows through an Rng. Runs are a
/// pure function of the master seed: the engine derives one independent
/// stream per node (see derive_stream), so results do not depend on node
/// iteration order and sweeps parallelize trivially.
///
/// Satisfies std::uniform_random_bit_generator so it can also drive
/// <random> distributions in tests.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 from `seed` (any value is a
  /// valid seed, including 0).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly random bits.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless rejection method, so the result is exactly uniform.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Bernoulli trial with success probability 2^-k for integer k >= 0,
  /// computed exactly from random bits (no floating-point rounding). This is
  /// the workhorse for the paper's beeping probabilities p = 2^-level.
  /// k >= 64 always fails (probability < 2^-63 is below resolution; the
  /// paper caps levels at O(log n) well under this).
  bool bernoulli_pow2(unsigned k) noexcept;

  /// A new Rng whose stream is statistically independent of this one's,
  /// keyed by `key`. Used to derive per-node streams from a master seed.
  Rng derive_stream(std::uint64_t key) const noexcept;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;  // retained so derive_stream is order-independent
};

}  // namespace beepmis::support
