#include "src/obs/recovery.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/invariant.hpp"
#include "src/exp/runner.hpp"
#include "src/graph/generators.hpp"
#include "src/obs/flight.hpp"
#include "src/obs/json_parse.hpp"
#include "src/obs/report.hpp"
#include "src/support/rng.hpp"

namespace beepmis {
namespace {

obs::RoundEvent make_event(std::uint64_t round, std::uint32_t active) {
  obs::RoundEvent e;
  e.round = round;
  e.active = active;
  return e;
}

/// A probe whose result the test scripts directly.
obs::InvariantProbe fixed_probe(obs::InvariantProbeResult r) {
  return [r]() { return r; };
}

// ---------------------------------------------------------------------------
// InvariantMonitor unit semantics (scripted probe + synthetic events).

TEST(InvariantMonitor, LatchesIndependenceOnlyAtStabilizationClaim) {
  obs::InvariantConfig cfg;
  cfg.cadence = 0;  // edges only
  obs::InvariantMonitor mon(cfg);
  obs::InvariantProbeResult bad;
  bad.stabilized = true;
  bad.independent = false;
  bad.maximal = true;
  mon.set_probe(fixed_probe(bad));

  // Active rounds: never probed, never latched (mid-convergence the MIS is
  // legitimately in flux).
  for (std::uint64_t r = 1; r <= 5; ++r) mon.on_round(make_event(r, 3));
  EXPECT_TRUE(mon.violations().empty());
  EXPECT_EQ(mon.probe_count(), 0u);

  // Stabilization edge: probed, latched once.
  mon.on_round(make_event(6, 0));
  ASSERT_EQ(mon.violations().size(), 1u);
  EXPECT_EQ(mon.violations()[0].kind, obs::InvariantKind::Independence);
  EXPECT_EQ(mon.violations()[0].round, 6u);

  // Staying stabilized is not a new edge; re-stabilizing latches nothing new
  // (each kind latches at most once per reset).
  mon.on_round(make_event(7, 0));
  mon.on_round(make_event(8, 2));
  mon.on_round(make_event(9, 0));
  EXPECT_EQ(mon.violations().size(), 1u);

  mon.reset();
  EXPECT_TRUE(mon.violations().empty());
  mon.on_round(make_event(1, 0));  // first event claiming S_t = V is an edge
  EXPECT_EQ(mon.violations().size(), 1u);
}

TEST(InvariantMonitor, LevelRangeCheckedAtCadence) {
  obs::InvariantConfig cfg;
  cfg.cadence = 4;
  obs::InvariantMonitor mon(cfg);
  obs::InvariantProbeResult bad;
  bad.stabilized = false;
  bad.levels_in_range = false;
  mon.set_probe(fixed_probe(bad));

  for (std::uint64_t r = 1; r <= 3; ++r) mon.on_round(make_event(r, 9));
  EXPECT_TRUE(mon.violations().empty());
  mon.on_round(make_event(4, 9));  // cadence hit mid-convergence
  ASSERT_EQ(mon.violations().size(), 1u);
  EXPECT_EQ(mon.violations()[0].kind, obs::InvariantKind::LevelRange);
  EXPECT_EQ(mon.violations()[0].round, 4u);
  EXPECT_EQ(mon.probe_count(), 1u);
}

TEST(InvariantMonitor, ForwardsToFlightRecorderAndTracker) {
  obs::AnomalyConfig acfg;  // detectors effectively off
  acfg.storm_window = 0;
  obs::FlightRecorder flight(8, acfg, obs::FlightContext{});
  obs::RecoveryTracker tracker(obs::RecoveryConfig{});

  obs::InvariantConfig cfg;
  obs::InvariantMonitor mon(cfg);
  obs::InvariantProbeResult bad;
  bad.stabilized = true;
  bad.independent = false;
  bad.maximal = false;
  mon.set_probe(fixed_probe(bad));
  mon.set_flight_recorder(&flight);
  mon.set_recovery_tracker(&tracker);

  mon.on_round(make_event(12, 0));
  ASSERT_EQ(mon.violations().size(), 2u);  // independence + maximality
  ASSERT_EQ(flight.anomalies().size(), 2u);
  EXPECT_EQ(flight.anomalies()[0].kind,
            obs::AnomalyKind::InvariantIndependence);
  EXPECT_EQ(flight.anomalies()[1].kind, obs::AnomalyKind::InvariantMaximality);
  // The tracker had no open epoch: breakage opened one.
  EXPECT_TRUE(tracker.epoch_open());
  tracker.finalize(20);
  ASSERT_EQ(tracker.epochs().size(), 1u);
  EXPECT_EQ(tracker.epochs()[0].cause, "invariant-violation");
  EXPECT_EQ(tracker.epochs()[0].outcome,
            obs::RecoveryOutcome::SafetyViolation);
}

// ---------------------------------------------------------------------------
// RecoveryTracker classification (scripted events).

TEST(RecoveryTracker, ClassifiesRecoveredWithinBound) {
  obs::RecoveryConfig cfg;
  cfg.recovery_bound = 50;
  obs::RecoveryTracker t(cfg);
  t.on_fault(10, "corrupt-random", 5);
  EXPECT_TRUE(t.epoch_open());
  for (std::uint64_t r = 11; r <= 19; ++r) t.on_round(make_event(r, 7));
  t.on_round(make_event(20, 0));
  EXPECT_FALSE(t.epoch_open());
  ASSERT_EQ(t.epochs().size(), 1u);
  const obs::RecoveryEpoch& ep = t.epochs()[0];
  EXPECT_EQ(ep.cause, "corrupt-random");
  EXPECT_EQ(ep.faults, 5u);
  EXPECT_EQ(ep.onset_round, 10u);
  EXPECT_EQ(ep.end_round, 20u);
  EXPECT_EQ(ep.recovery_rounds, 10u);
  EXPECT_EQ(ep.outcome, obs::RecoveryOutcome::Recovered);
}

TEST(RecoveryTracker, LateRecoveryIsAStall) {
  obs::RecoveryConfig cfg;
  cfg.recovery_bound = 5;
  obs::RecoveryTracker t(cfg);
  t.on_fault(10, "corrupt-nodes", 2);
  for (std::uint64_t r = 11; r <= 29; ++r) t.on_round(make_event(r, 3));
  t.on_round(make_event(30, 0));
  ASSERT_EQ(t.epochs().size(), 1u);
  EXPECT_EQ(t.epochs()[0].outcome, obs::RecoveryOutcome::Stall);
}

TEST(RecoveryTracker, ZeroBoundAcceptsAnyFiniteRecovery) {
  obs::RecoveryTracker t(obs::RecoveryConfig{});  // bound 0
  t.on_fault(1, "corrupt-all", 100);
  for (std::uint64_t r = 2; r <= 999; ++r) t.on_round(make_event(r, 1));
  t.on_round(make_event(1000, 0));
  ASSERT_EQ(t.epochs().size(), 1u);
  EXPECT_EQ(t.epochs()[0].outcome, obs::RecoveryOutcome::Recovered);
}

TEST(RecoveryTracker, AbsorbedFaultClosesMaskedAtFinalize) {
  obs::RecoveryTracker t(obs::RecoveryConfig{});
  obs::InvariantProbeResult ok;
  ok.stabilized = true;
  t.set_probe(fixed_probe(ok));
  t.on_fault(40, "corrupt-random", 3);
  // No events at all: run_to_stabilization saw is_stabilized and executed
  // zero rounds — the settled configuration absorbed the corruption.
  t.finalize(40);
  ASSERT_EQ(t.epochs().size(), 1u);
  EXPECT_EQ(t.epochs()[0].outcome, obs::RecoveryOutcome::Masked);
  EXPECT_EQ(t.epochs()[0].recovery_rounds, 0u);
}

TEST(RecoveryTracker, BudgetExhaustionClosesStallAtFinalize) {
  obs::RecoveryTracker t(obs::RecoveryConfig{});
  obs::InvariantProbeResult unsettled;
  unsettled.stabilized = false;
  t.set_probe(fixed_probe(unsettled));
  t.on_fault(40, "corrupt-random", 3);
  for (std::uint64_t r = 41; r <= 60; ++r) t.on_round(make_event(r, 2));
  t.finalize(60);  // run stopped without an active == 0 event
  ASSERT_EQ(t.epochs().size(), 1u);
  EXPECT_EQ(t.epochs()[0].outcome, obs::RecoveryOutcome::Stall);
}

TEST(RecoveryTracker, ViolationDuringEpochPoisonsToSafetyViolation) {
  obs::RecoveryTracker t(obs::RecoveryConfig{});
  t.on_fault(5, "corrupt-random", 1);
  t.on_round(make_event(6, 4));
  t.on_violation(7);
  t.on_round(make_event(8, 0));  // recovers, but safety already lost
  ASSERT_EQ(t.epochs().size(), 1u);
  EXPECT_EQ(t.epochs()[0].outcome, obs::RecoveryOutcome::SafetyViolation);
  EXPECT_EQ(t.summary().invariant_violations, 1u);
}

TEST(RecoveryTracker, CompoundFaultsFoldIntoOneEpoch) {
  obs::RecoveryConfig cfg;
  cfg.recovery_bound = 100;
  obs::RecoveryTracker t(cfg);
  t.on_fault(10, "corrupt-random", 4);
  t.on_round(make_event(11, 6));
  t.on_fault(12, "corrupt-nodes", 3);  // lands inside the open epoch
  for (std::uint64_t r = 13; r <= 24; ++r) t.on_round(make_event(r, 2));
  t.on_round(make_event(25, 0));
  ASSERT_EQ(t.epochs().size(), 1u);
  const obs::RecoveryEpoch& ep = t.epochs()[0];
  EXPECT_EQ(ep.cause, "corrupt-random");  // first onset names the epoch
  EXPECT_EQ(ep.faults, 7u);
  EXPECT_EQ(ep.onset_round, 10u);         // recovery measured from first onset
  EXPECT_EQ(ep.recovery_rounds, 15u);
}

TEST(RecoverySummary, MergeFoldsCountersAndDigest) {
  obs::RecoveryTracker a(obs::RecoveryConfig{});
  a.on_fault(0, "corrupt-random", 1);
  a.on_round(make_event(2, 3));
  a.on_round(make_event(10, 0));
  obs::RecoveryTracker b(obs::RecoveryConfig{});
  b.on_fault(0, "corrupt-random", 1);
  b.on_round(make_event(1, 4));
  b.on_round(make_event(30, 0));
  b.on_violation(31);
  b.on_round(make_event(32, 5));
  b.on_round(make_event(33, 0));

  obs::RecoverySummary folded;
  folded.merge(a.summary());
  folded.merge(b.summary());
  EXPECT_EQ(folded.epochs, 3u);
  EXPECT_EQ(folded.recovered, 2u);
  EXPECT_EQ(folded.safety_violations, 1u);
  EXPECT_EQ(folded.invariant_violations, 1u);
  EXPECT_EQ(folded.recovery_rounds.count(), 3u);
  EXPECT_DOUBLE_EQ(folded.recovery_rounds.min(), 2.0);
  EXPECT_DOUBLE_EQ(folded.recovery_rounds.max(), 30.0);
}

// ---------------------------------------------------------------------------
// End-to-end against real engines.

core::EngineConfig engine_config(core::KernelKind kernel,
                                 std::uint64_t seed) {
  core::EngineConfig cfg;
  cfg.variant = core::Variant::GlobalDelta;
  cfg.kind = core::EngineKind::Fast;
  cfg.kernel = kernel;
  cfg.seed = seed;
  return cfg;
}

TEST(RecoveryIntegration, CleanRunHasNoSpuriousViolations) {
  support::Rng grng(91);
  const auto g = graph::make_erdos_renyi_avg_degree(160, 8.0, grng);
  auto engine = core::make_engine(g, engine_config(core::KernelKind::Auto, 7));

  obs::InvariantConfig icfg;
  icfg.cadence = 8;
  obs::InvariantMonitor mon(icfg);
  mon.set_probe(core::make_invariant_probe(*engine));
  engine->set_observer(&mon);

  support::Rng init(3);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
    engine->corrupt(v, init);  // adversarial but admissible start
  engine->run_to_stabilization(exp::default_round_budget(g.vertex_count()));
  ASSERT_TRUE(engine->is_stabilized());
  EXPECT_TRUE(mon.violations().empty())
      << "a correct execution must never trip the monitor";
  EXPECT_GT(mon.probe_count(), 0u);
}

TEST(RecoveryIntegration, CorruptionRecoversWithinPaperBound) {
  support::Rng grng(92);
  const auto g = graph::make_erdos_renyi_avg_degree(200, 8.0, grng);
  auto engine =
      core::make_engine(g, engine_config(core::KernelKind::Auto, 11));
  const beep::Round budget = exp::default_round_budget(g.vertex_count());

  obs::RecoveryConfig rcfg;
  rcfg.recovery_bound = exp::default_recovery_bound(g.vertex_count());
  obs::RecoveryTracker tracker(rcfg);
  tracker.set_probe(core::make_invariant_probe(*engine));

  obs::InvariantConfig icfg;
  obs::InvariantMonitor mon(icfg);
  mon.set_probe(core::make_invariant_probe(*engine));
  mon.set_recovery_tracker(&tracker);

  obs::TeeObserver tee;
  tee.add(&mon);
  tee.add(&tracker);
  engine->set_observer(&tee);

  support::Rng init(5);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
    engine->corrupt(v, init);
  engine->run_to_stabilization(budget);
  ASSERT_TRUE(engine->is_stabilized());
  EXPECT_TRUE(tracker.epochs().empty());  // no fault yet, no epoch

  support::Rng frng(0xfa17);
  core::corrupt_random(*engine, 40, frng, &tracker);
  EXPECT_TRUE(tracker.epoch_open());
  engine->run_to_stabilization(budget);
  tracker.finalize(engine->round());

  ASSERT_TRUE(engine->is_stabilized());
  ASSERT_EQ(tracker.epochs().size(), 1u);
  const obs::RecoveryEpoch& ep = tracker.epochs()[0];
  EXPECT_EQ(ep.cause, "corrupt-random");
  EXPECT_EQ(ep.faults, 40u);
  EXPECT_EQ(ep.outcome, obs::RecoveryOutcome::Recovered)
      << "injected corruption must re-stabilize within the O(log n) bound";
  EXPECT_TRUE(mon.violations().empty());

  const obs::RecoverySummary s = tracker.summary();
  EXPECT_EQ(s.epochs, 1u);
  EXPECT_EQ(s.recovered, 1u);
  EXPECT_EQ(s.invariant_violations, 0u);
}

TEST(RecoveryIntegration, EmptyCorruptionIsMasked) {
  support::Rng grng(93);
  const auto g = graph::make_erdos_renyi_avg_degree(120, 8.0, grng);
  auto engine =
      core::make_engine(g, engine_config(core::KernelKind::Auto, 13));
  obs::RecoveryTracker tracker(obs::RecoveryConfig{});
  tracker.set_probe(core::make_invariant_probe(*engine));
  engine->set_observer(&tracker);

  support::Rng init(5);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
    engine->corrupt(v, init);
  engine->run_to_stabilization(exp::default_round_budget(g.vertex_count()));
  ASSERT_TRUE(engine->is_stabilized());

  // Zero-node fault wave: the configuration is untouched, the engine stays
  // stabilized, run_to_stabilization executes no rounds — a masked epoch.
  support::Rng frng(1);
  core::corrupt_nodes(*engine, {}, frng, &tracker);
  engine->run_to_stabilization(16);
  tracker.finalize(engine->round());
  ASSERT_EQ(tracker.epochs().size(), 1u);
  EXPECT_EQ(tracker.epochs()[0].outcome, obs::RecoveryOutcome::Masked);
}

// ---------------------------------------------------------------------------
// Kernel parity: the recovery artifact and the flight dump are functions of
// the stream-identical event sequence and the engine-independent settlement
// view, so the same seeded corrupted run must produce byte-identical bytes
// on all three kernels.

struct KernelRunArtifacts {
  std::string recovery;
  std::string dump;
};

KernelRunArtifacts run_corrupted(const graph::Graph& g,
                                 core::KernelKind kernel) {
  auto engine = core::make_engine(g, engine_config(kernel, 77));
  const beep::Round budget = exp::default_round_budget(g.vertex_count());

  obs::AnomalyConfig acfg;
  acfg.n = g.vertex_count();
  acfg.expected_rounds = budget;
  obs::FlightContext fctx;
  fctx.tool = "test";
  fctx.seed = 77;
  fctx.family = "er-avg8";
  fctx.n = g.vertex_count();
  fctx.m = g.edge_count();
  obs::FlightRecorder flight(32, acfg, fctx);
  flight.set_level_probe([&engine, &g]() {
    std::vector<std::int32_t> levels(g.vertex_count());
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
      levels[v] = engine->level(v);
    return levels;
  });
  flight.set_snapshot_every(64);

  obs::RecoveryConfig rcfg;
  rcfg.recovery_bound = exp::default_recovery_bound(g.vertex_count());
  obs::RecoveryTracker tracker(rcfg);
  tracker.set_probe(core::make_invariant_probe(*engine));
  obs::InvariantMonitor mon(obs::InvariantConfig{});
  mon.set_probe(core::make_invariant_probe(*engine));
  mon.set_flight_recorder(&flight);
  mon.set_recovery_tracker(&tracker);

  obs::TeeObserver tee;
  tee.add(&flight);
  tee.add(&mon);
  tee.add(&tracker);
  engine->set_observer(&tee);

  support::Rng init(9);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
    engine->corrupt(v, init);
  engine->run_to_stabilization(budget);
  support::Rng frng(0xfa17);
  core::corrupt_random(*engine, 24, frng, &tracker);
  engine->run_to_stabilization(budget);
  support::Rng frng2(0xfa18);
  core::corrupt_random(*engine, 24, frng2, &tracker);
  engine->run_to_stabilization(budget);
  tracker.finalize(engine->round());

  obs::RecoveryReport report;
  report.context = fctx;
  report.config = rcfg;
  report.monitor = true;
  report.monitor_cadence = mon.config().cadence;
  report.epochs = tracker.epochs();
  report.violations = mon.violations();
  report.summary = tracker.summary();

  KernelRunArtifacts out;
  std::ostringstream rec;
  obs::write_recovery_json(rec, report);
  out.recovery = rec.str();
  std::ostringstream dump;
  flight.write_dump(dump);
  out.dump = dump.str();
  return out;
}

TEST(RecoveryIntegration, KernelsProduceIdenticalArtifacts) {
  support::Rng grng(94);
  const auto g = graph::make_erdos_renyi_avg_degree(192, 8.0, grng);
  const auto scalar = run_corrupted(g, core::KernelKind::Scalar);
  const auto bit = run_corrupted(g, core::KernelKind::Bit);
  const auto frontier = run_corrupted(g, core::KernelKind::Frontier);
  EXPECT_EQ(scalar.recovery, bit.recovery);
  EXPECT_EQ(scalar.recovery, frontier.recovery);
  EXPECT_EQ(scalar.dump, bit.dump);
  EXPECT_EQ(scalar.dump, frontier.dump);

  // And the artifact the kernels agree on is a valid document.
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(scalar.recovery, &doc, &error)) << error;
  ASSERT_TRUE(obs::recovery_validate(doc, &error)) << error;
  EXPECT_EQ(doc.get("epochs").array.size(), 2u);
}

// ---------------------------------------------------------------------------
// Artifact round-trip + validation.

obs::RecoveryReport sample_report() {
  obs::RecoveryReport report;
  report.context.tool = "test";
  report.context.seed = 1;
  report.context.family = "er-avg8";
  report.context.n = 16;
  report.context.m = 40;
  report.context.algorithm = "V1-global-delta";
  report.config.recovery_bound = 100;
  report.monitor = true;
  report.monitor_cadence = 64;

  obs::RecoveryTracker t(report.config);
  t.on_fault(10, "corrupt-random", 4);
  t.on_round(make_event(11, 6));
  t.on_round(make_event(25, 0));
  t.on_fault(30, "corrupt-all", 16);
  t.on_round(make_event(31, 5));
  t.on_round(make_event(38, 0));
  report.epochs = t.epochs();
  report.summary = t.summary();
  return report;
}

TEST(RecoveryArtifact, RoundTripsThroughParserAndValidator) {
  std::ostringstream os;
  obs::write_recovery_json(os, sample_report());

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(os.str(), &doc, &error)) << error;
  std::size_t epochs = 0, violations = 0;
  ASSERT_TRUE(obs::recovery_validate(doc, &error, &epochs, &violations))
      << error;
  EXPECT_EQ(epochs, 2u);
  EXPECT_EQ(violations, 0u);

  EXPECT_EQ(doc.get("schema").as_string(), "beepmis.recovery.v1");
  EXPECT_EQ(doc.get("context").get("graph").get("family").as_string(),
            "er-avg8");
  EXPECT_TRUE(doc.get("config").get("monitor").boolean);
  ASSERT_EQ(doc.get("epochs").array.size(), 2u);
  EXPECT_EQ(doc.get("epochs").array[0].get("outcome").as_string(),
            "recovered-within-bound");
  EXPECT_DOUBLE_EQ(doc.get("epochs").array[0].get("recovery_rounds")
                       .as_number(),
                   15.0);
  EXPECT_DOUBLE_EQ(doc.get("summary").get("recovered").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(
      doc.get("summary").get("recovery_rounds").get("count").as_number(),
      2.0);
}

TEST(RecoveryArtifact, SummaryOnlyFoldedFormIsValid) {
  obs::RecoveryReport report = sample_report();
  report.epochs.clear();      // soak folds away the per-epoch list
  report.violations.clear();
  std::ostringstream os;
  obs::write_recovery_json(os, report);
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(os.str(), &doc, &error)) << error;
  std::size_t epochs = 0;
  ASSERT_TRUE(obs::recovery_validate(doc, &error, &epochs)) << error;
  EXPECT_EQ(epochs, 2u);  // the summary still carries the totals
}

TEST(RecoveryArtifact, ValidatorRejectsMalformedDocuments) {
  std::ostringstream os;
  obs::write_recovery_json(os, sample_report());
  const std::string good = os.str();

  const auto rejects = [&](const std::string& from, const std::string& to) {
    std::string bad = good;
    const auto pos = bad.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    bad.replace(pos, from.size(), to);
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::json_parse(bad, &doc, &error)) << error;
    EXPECT_FALSE(obs::recovery_validate(doc, &error))
        << from << " -> " << to << " should be rejected";
  };

  rejects("beepmis.recovery.v1", "beepmis.recovery.v2");
  rejects("\"outcome\":\"recovered-within-bound\"",
          "\"outcome\":\"escaped\"");
  // Epoch arithmetic broken: recovery_rounds no longer end - onset.
  rejects("\"recovery_rounds\":15", "\"recovery_rounds\":14");
  // Outcome counts no longer sum to epochs.
  rejects("\"recovered\":2", "\"recovered\":1");
  rejects("\"monitor\":true", "\"monitor\":1");
}

// ---------------------------------------------------------------------------
// Report ingestion.

TEST(RecoveryReportIngest, RendersRecoveryTable) {
  std::ostringstream os;
  obs::write_recovery_json(os, sample_report());
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(os.str(), &doc, &error)) << error;

  obs::ReportBuilder builder;
  ASSERT_TRUE(builder.add_document(doc, "recovery.json", &error)) << error;
  ASSERT_TRUE(builder.add_document(doc, "recovery2.json", &error)) << error;

  const auto rows = builder.recovery_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].algorithm, "V1-global-delta");
  EXPECT_EQ(rows[0].family, "er-avg8");
  EXPECT_EQ(rows[0].n, 16u);
  EXPECT_EQ(rows[0].epochs, 4u);   // two documents folded
  EXPECT_EQ(rows[0].recovered, 4u);
  EXPECT_DOUBLE_EQ(rows[0].mean, 11.5);  // (15 + 8) / 2 per document
  EXPECT_DOUBLE_EQ(rows[0].max, 15.0);

  std::ostringstream md;
  builder.write_markdown(md, 0.10);
  EXPECT_NE(md.str().find("Recovery epochs"), std::string::npos);
  EXPECT_NE(md.str().find("| V1-global-delta | er-avg8 | 16 | 4 |"),
            std::string::npos)
      << md.str();

  std::ostringstream js;
  builder.write_json(js, 0.10);
  obs::JsonValue rdoc;
  ASSERT_TRUE(obs::json_parse(js.str(), &rdoc, &error)) << error;
  ASSERT_TRUE(rdoc.get("recovery").is_array());
  ASSERT_EQ(rdoc.get("recovery").array.size(), 1u);
  EXPECT_DOUBLE_EQ(rdoc.get("recovery").array[0].get("epochs").as_number(),
                   4.0);
}

TEST(RecoveryReportIngest, RejectsInvalidRecoveryDocument) {
  obs::ReportBuilder builder;
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(
      R"({"schema": "beepmis.recovery.v1", "summary": {}})", &doc, &error));
  EXPECT_FALSE(builder.add_document(doc, "bad.json", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace beepmis
