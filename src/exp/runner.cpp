#include "src/exp/runner.hpp"

#include <algorithm>

#include "src/mis/verifier.hpp"
#include "src/obs/timing.hpp"
#include "src/support/check.hpp"

namespace beepmis::exp {

std::unique_ptr<beep::Simulation> make_selfstab_sim(const graph::Graph& g,
                                                    Variant variant,
                                                    std::uint64_t seed,
                                                    std::int32_t c1) {
  std::unique_ptr<beep::BeepingAlgorithm> algo;
  switch (variant) {
    case Variant::GlobalDelta:
      algo = std::make_unique<core::SelfStabMis>(
          g, core::lmax_global_delta(g, c1 ? c1 : core::kC1GlobalDelta),
          core::Knowledge::GlobalMaxDegree);
      break;
    case Variant::OwnDegree:
      algo = std::make_unique<core::SelfStabMis>(
          g, core::lmax_own_degree(g, c1 ? c1 : core::kC1OwnDegree),
          core::Knowledge::OwnDegree);
      break;
    case Variant::TwoChannel:
      algo = std::make_unique<core::SelfStabMisTwoChannel>(
          g, core::lmax_one_hop(g, c1 ? c1 : core::kC1TwoChannel),
          core::Knowledge::OneHopMaxDegree);
      break;
  }
  return std::make_unique<beep::Simulation>(g, std::move(algo), seed);
}

void apply_init(beep::Simulation& sim, core::InitPolicy policy,
                support::Rng& rng) {
  auto& base = sim.algorithm();
  if (auto* a1 = dynamic_cast<core::SelfStabMis*>(&base)) {
    core::apply_init(*a1, policy, rng);
  } else if (auto* a2 = dynamic_cast<core::SelfStabMisTwoChannel*>(&base)) {
    core::apply_init(*a2, policy, rng);
  } else {
    BEEPMIS_CHECK(false, "apply_init: not a self-stab MIS simulation");
  }
}

bool selfstab_stabilized(const beep::Simulation& sim) {
  const auto& base = sim.algorithm();
  if (auto* a1 = dynamic_cast<const core::SelfStabMis*>(&base))
    return a1->is_stabilized();
  if (auto* a2 = dynamic_cast<const core::SelfStabMisTwoChannel*>(&base))
    return a2->is_stabilized();
  BEEPMIS_CHECK(false, "not a self-stab MIS simulation");
  return false;
}

std::vector<bool> selfstab_mis_members(const beep::Simulation& sim) {
  const auto& base = sim.algorithm();
  if (auto* a1 = dynamic_cast<const core::SelfStabMis*>(&base))
    return a1->mis_members();
  if (auto* a2 = dynamic_cast<const core::SelfStabMisTwoChannel*>(&base))
    return a2->mis_members();
  BEEPMIS_CHECK(false, "not a self-stab MIS simulation");
  return {};
}

RunResult run_to_stabilization(beep::Simulation& sim, beep::Round max_rounds,
                               obs::MetricsRegistry* metrics) {
  RunResult r;
  {
    obs::ScopedTimer timer(metrics, "runner.run_to_stabilization");
    const beep::Round start = sim.round();
    const beep::Round budget = start + max_rounds;
    while (!selfstab_stabilized(sim) && sim.round() < budget) sim.step();

    r.stabilized = selfstab_stabilized(sim);
    r.rounds = sim.round() - start;
    const auto members = selfstab_mis_members(sim);
    r.mis_size = mis::member_count(members);
    r.valid_mis = mis::is_mis(sim.graph(), members);
  }
  if (metrics != nullptr) {
    metrics->counter("runner.runs_total").inc();
    metrics->counter("runner.rounds_total").inc(r.rounds);
    metrics->histogram("runner.rounds_to_stabilize").record(r.rounds);
    metrics->digest("runner.rounds_to_stabilize")
        .add(static_cast<double>(r.rounds));
    if (!r.stabilized) metrics->counter("runner.budget_exhausted").inc();
    if (!r.valid_mis) metrics->counter("runner.invalid_mis").inc();
  }
  return r;
}

RunResult run_to_stabilization(core::Engine& engine, beep::Round max_rounds,
                               obs::MetricsRegistry* metrics) {
  RunResult r;
  {
    obs::ScopedTimer timer(metrics, "runner.run_to_stabilization");
    r.rounds = engine.run_to_stabilization(max_rounds);
    r.stabilized = engine.is_stabilized();
    const auto members = engine.mis_members();
    r.mis_size = mis::member_count(members);
    r.valid_mis = mis::is_mis(engine.graph(), members);
  }
  if (metrics != nullptr) {
    metrics->counter("runner.runs_total").inc();
    metrics->counter("runner.rounds_total").inc(r.rounds);
    metrics->histogram("runner.rounds_to_stabilize").record(r.rounds);
    metrics->digest("runner.rounds_to_stabilize")
        .add(static_cast<double>(r.rounds));
    if (!r.stabilized) metrics->counter("runner.budget_exhausted").inc();
    if (!r.valid_mis) metrics->counter("runner.invalid_mis").inc();
  }
  return r;
}

RunResult run_variant(const graph::Graph& g, Variant variant,
                      core::InitPolicy init, std::uint64_t seed,
                      beep::Round max_rounds, std::int32_t c1,
                      obs::MetricsRegistry* metrics,
                      obs::RoundObserver* observer, core::EngineKind kind,
                      core::KernelKind kernel, std::size_t shard_threads) {
  core::EngineConfig config;
  config.variant = variant;
  config.kind = kind;
  config.kernel = kernel;
  config.seed = seed;
  config.c1 = c1;
  config.shard_threads = shard_threads;
  auto engine = core::make_engine(g, config);
  engine->set_observer(observer);
  engine->set_metrics(metrics);
  // The init policy's randomness is keyed off the same seed but a distinct
  // stream, so (seed → run) stays a pure function.
  support::Rng init_rng = support::Rng(seed).derive_stream(0xfadedcafe);
  core::apply_init(*engine, init, init_rng);
  return run_to_stabilization(*engine, max_rounds, metrics);
}

std::vector<RunResult> run_replicas(const graph::Graph& g, Variant variant,
                                    core::InitPolicy init,
                                    std::span<const std::uint64_t> seeds,
                                    beep::Round max_rounds,
                                    support::TaskPool& pool, std::int32_t c1,
                                    obs::MetricsRegistry* metrics,
                                    obs::RoundObserver* observer,
                                    core::EngineKind kind,
                                    core::KernelKind kernel,
                                    std::size_t shard_threads) {
  struct Shard {
    RunResult result;
    std::unique_ptr<obs::MetricsRegistry> scratch;
    obs::BufferedSink events;
  };
  std::vector<Shard> shards(seeds.size());
  pool.parallel_for(seeds.size(), [&](std::size_t i) {
    Shard& shard = shards[i];
    obs::MetricsRegistry* scratch = nullptr;
    if (metrics != nullptr) {
      shard.scratch = std::make_unique<obs::MetricsRegistry>();
      scratch = shard.scratch.get();
    }
    if (observer != nullptr) shard.events = obs::BufferedSink(observer);
    shard.result =
        run_variant(g, variant, init, seeds[i], max_rounds, c1, scratch,
                    observer != nullptr ? &shard.events : nullptr, kind,
                    kernel, shard_threads);
  });
  // Deterministic fold in seed order: digests are order-sensitive, so the
  // coordinator — not the workers — owns all shared aggregation.
  std::vector<RunResult> results;
  results.reserve(shards.size());
  for (Shard& shard : shards) {
    if (metrics != nullptr) metrics->merge(*shard.scratch);
    shard.events.flush();
    results.push_back(shard.result);
  }
  return results;
}

beep::Round default_round_budget(std::size_t n) {
  std::size_t log2n = 1;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  return 3000 + 400 * static_cast<beep::Round>(log2n);
}

beep::Round default_recovery_bound(std::size_t n) {
  // Same O(log n) w.h.p. horizon as the run budget: Thm 2.1/2.2 promise
  // re-stabilization from *any* configuration in O(log n) rounds, so a
  // recovery epoch that outlives the from-scratch budget is a stall by the
  // paper's own yardstick.
  return default_round_budget(n);
}

}  // namespace beepmis::exp
