#include "src/support/fit.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/check.hpp"

namespace beepmis::support {

FitResult linear_fit(std::span<const double> xs, std::span<const double> ys) {
  BEEPMIS_CHECK(xs.size() == ys.size(), "fit: size mismatch");
  BEEPMIS_CHECK(xs.size() >= 2, "fit: need at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  BEEPMIS_CHECK(sxx > 0, "fit: regressor is constant");
  FitResult r;
  r.slope = sxy / sxx;
  r.intercept = my - r.slope * mx;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (r.intercept + r.slope * xs[i]);
    ss_res += e * e;
  }
  r.r2 = syy > 0 ? 1.0 - ss_res / syy : 1.0;
  r.rmse = std::sqrt(ss_res / n);
  return r;
}

std::string growth_model_name(GrowthModel m) {
  switch (m) {
    case GrowthModel::LogN: return "log n";
    case GrowthModel::LogNLogLogN: return "log n * loglog n";
    case GrowthModel::Linear: return "n";
    case GrowthModel::Sqrt: return "sqrt n";
  }
  return "?";
}

double growth_regressor(GrowthModel m, double n) {
  BEEPMIS_CHECK(n >= 3.0, "growth regressor requires n >= 3");
  switch (m) {
    case GrowthModel::LogN: return std::log(n);
    case GrowthModel::LogNLogLogN: return std::log(n) * std::log(std::log(n));
    case GrowthModel::Linear: return n;
    case GrowthModel::Sqrt: return std::sqrt(n);
  }
  return 0.0;
}

FitResult fit_growth(GrowthModel m, std::span<const double> ns,
                     std::span<const double> ys) {
  std::vector<double> xs(ns.size());
  for (std::size_t i = 0; i < ns.size(); ++i) xs[i] = growth_regressor(m, ns[i]);
  return linear_fit(xs, ys);
}

std::vector<std::pair<GrowthModel, FitResult>> rank_growth_models(
    std::span<const double> ns, std::span<const double> ys) {
  std::vector<std::pair<GrowthModel, FitResult>> out;
  for (GrowthModel m : {GrowthModel::LogN, GrowthModel::LogNLogLogN,
                        GrowthModel::Sqrt, GrowthModel::Linear}) {
    out.emplace_back(m, fit_growth(m, ns, ys));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second.r2 > b.second.r2; });
  return out;
}

}  // namespace beepmis::support
