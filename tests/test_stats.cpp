#include "src/support/stats.hpp"

#include <gtest/gtest.h>

#include "src/support/rng.hpp"

namespace beepmis::support {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 100;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(SampleSet, QuantilesOfKnownData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.quantile(0.95), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, SingleSampleQuantiles) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 42.0);
}

TEST(SampleSet, AddAfterQuantileStillCorrect) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bucket 0
  h.add(1.99);   // bucket 0
  h.add(2.0);    // bucket 1
  h.add(9.99);   // bucket 4
  h.add(10.0);   // overflow
  h.add(25.0);   // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count_at(0), 2u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.count_at(4), 1u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, AsciiRendersEveryBucket) {
  Histogram h(0.0, 4.0, 4);
  for (int i = 0; i < 8; ++i) h.add(1.5);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace beepmis::support
