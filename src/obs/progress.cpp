#include "src/obs/progress.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>

#include "src/obs/json.hpp"

namespace beepmis::obs {
namespace {

bool fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

}  // namespace

ProgressWriter::ProgressWriter(std::string path, std::size_t keep)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  ring_.resize(std::max<std::size_t>(keep, 1));
}

void ProgressWriter::beat(const ProgressSample& sample) {
  if (!ok()) return;
  ring_[head_] = sample;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  ++beats_;

  const std::size_t cap = ring_.size();
  const bool wrapped = beats_ > cap;
  const std::size_t have = wrapped ? cap : static_cast<std::size_t>(beats_);
  const std::size_t first = wrapped ? head_ : 0;
  {
    std::ofstream out(tmp_path_, std::ios::trunc);
    if (!out) {
      error_ = "cannot open " + tmp_path_;
      return;
    }
    for (std::size_t i = 0; i < have; ++i) {
      progress_write_line(out, ring_[(first + i) % cap]);
      out << '\n';
    }
    out.flush();
    if (!out) {
      error_ = "write failed: " + tmp_path_;
      return;
    }
  }
  // Atomic replace: rename(2) within a directory is atomic on POSIX, so a
  // concurrent reader sees either the previous snapshot or this one.
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0)
    error_ = "rename failed: " + tmp_path_ + " -> " + path_;
}

void progress_write_line(std::ostream& os, const ProgressSample& s) {
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "beepmis.progress.v1");
  w.field("round", s.round);
  w.field("budget", s.budget);
  w.field("active", s.active);
  w.field("mis", s.mis);
  w.key("timing").begin_object();
  w.field("rounds_per_sec", s.rounds_per_sec);
  w.field("eta_s", s.eta_s);
  w.field("imbalance", s.imbalance);
  w.field("peak_rss_bytes", s.peak_rss_bytes);
  w.field("trace_dropped", s.trace_dropped);
  w.end_object();
  w.end_object();
}

bool progress_validate_line(const JsonValue& line, std::string* error) {
  if (!line.is_object() ||
      line.get("schema").as_string() != "beepmis.progress.v1")
    return fail(error, "not a beepmis.progress.v1 line");
  for (const char* k : {"round", "budget", "active", "mis"})
    if (line.get(k).type != JsonValue::Type::Number)
      return fail(error, std::string("progress.v1: \"") + k +
                             "\" must be a number");
  const JsonValue& timing = line.get("timing");
  if (!timing.is_object())
    return fail(error, "progress.v1: \"timing\" must be an object");
  for (const char* k : {"rounds_per_sec", "eta_s", "imbalance",
                        "peak_rss_bytes", "trace_dropped"})
    if (timing.get(k).type != JsonValue::Type::Number)
      return fail(error, std::string("progress.v1: timing.\"") + k +
                             "\" must be a number");
  return true;
}

bool progress_write_canonical_line(const JsonValue& line, std::ostream& os,
                                   std::string* error) {
  if (!progress_validate_line(line, error)) return false;
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "beepmis.progress.v1");
  for (const char* k : {"round", "budget", "active", "mis"})
    w.field(k, static_cast<std::uint64_t>(line.get(k).as_number()));
  w.end_object();
  return true;
}

}  // namespace beepmis::obs
