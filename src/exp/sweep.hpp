#pragma once

#include <cstdint>
#include <vector>

#include "src/exp/families.hpp"
#include "src/exp/runner.hpp"
#include "src/obs/digest.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/sink.hpp"
#include "src/support/fit.hpp"
#include "src/support/table.hpp"
#include "src/support/task_pool.hpp"

namespace beepmis::exp {

/// Aggregated stabilization-time measurements at one (family, n) point.
/// `rounds` is a streaming obs::Digest: exact at the default seed counts
/// (≤ Digest::kExact samples) and fixed-memory for arbitrarily long sweeps;
/// support::SampleSet remains the exact oracle used by the tests.
struct SweepPoint {
  Family family;
  std::size_t n = 0;            ///< actual vertex count of the instance
  obs::Digest rounds;           ///< stabilization rounds across seeds
  std::size_t failures = 0;     ///< runs that did not stabilize in budget
  std::size_t invalid = 0;      ///< runs whose final set was not a valid MIS
};

/// Configuration of a scaling sweep T(n).
struct SweepConfig {
  Variant variant = Variant::GlobalDelta;
  core::InitPolicy init = core::InitPolicy::UniformRandom;
  std::vector<std::size_t> sizes;   ///< n values
  std::size_t seeds = 20;           ///< runs per (family, n)
  std::uint64_t base_seed = 1;
  std::int32_t c1 = 0;              ///< 0 = paper default for the variant
  /// Executor selection, routed through core::make_engine. Auto resolves to
  /// the fast engine for every variant and init policy (proven
  /// round-identical to the reference simulator; see test_fast_engine.cpp),
  /// so sweeps never fall back to the slow path; Reference exists for
  /// cross-checks.
  core::EngineKind engine = core::EngineKind::Auto;
  /// Round-kernel selection for the fast engine (scalar / bit / frontier,
  /// all stream-identical — Auto resolves to the measured winner). Purely a
  /// wall-clock knob: sweep results never depend on it.
  core::KernelKind kernel = core::KernelKind::Auto;
  /// Optional telemetry: per-run wall time ("sweep.run" timer), the
  /// "sweep.rounds_to_stabilize" histogram + quantile digest and sweep.*
  /// counters land here; the fast engines also route their internal timers
  /// and settlement-refresh digests into it.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional per-round event observer, attached to every run regardless of
  /// the engine (simulation or fast path). One obs::RoundEvent per round.
  /// Under parallelism each replica buffers its events privately and the
  /// coordinator replays them here in ascending (size, seed) order, so the
  /// observer only ever runs on the calling thread and sees the exact
  /// stream a serial sweep would produce.
  obs::RoundObserver* observer = nullptr;
  /// Worker threads for replica-level parallelism (every (n, seed) replica
  /// is an independent task): 1 = run inline on the calling thread,
  /// 0 = one worker per hardware thread. Results — tables, SweepPoint
  /// digests, merged metrics (modulo wall-clock timer values), observer
  /// streams — are bit-identical for every value; see docs/architecture.md.
  std::size_t threads = 1;
  /// Worker threads *inside* each replica's rounds (the fast engine's
  /// sharded kernel; see core::EngineConfig::shard_threads). Orthogonal to
  /// `threads`: replica-level parallelism scales across runs, sharding
  /// scales one giant instance. Results are bit-identical for every value.
  std::size_t shard_threads = 1;
};

/// Master seed of the (family, n, s) replica: a splitmix64 sponge folding
/// each coordinate through a full avalanche, so distinct sweep points never
/// collide (the previous affine formula collided for adjacent n whenever s
/// spanned more than 1009 seeds). Graph draw, per-node streams and the init
/// draw all derive from this one value; the derivation is pinned by a
/// golden test (tests/test_sweep_parallel.cpp) because stored artifacts
/// reference it.
std::uint64_t sweep_seed(std::uint64_t base_seed, Family family,
                         std::size_t n, std::size_t s);

/// Runs the sweep for one family. Each run gets an independent seed; the
/// graph instance is redrawn per seed for randomized families. Replicas
/// execute through a support::TaskPool of config.threads workers; all
/// aggregation (SweepPoint digests, metrics merge, observer replay) happens
/// on the calling thread in ascending (size, seed) order — P² digests are
/// order-sensitive, so folding stays with the coordinator by design.
std::vector<SweepPoint> run_scaling_sweep(Family family,
                                          const SweepConfig& config);

/// Renders sweep points as a table: n, mean, median, p95, max, failures.
support::Table sweep_table(const std::vector<SweepPoint>& points);

/// Extracts (n, median rounds) pairs and ranks growth models by R².
std::vector<std::pair<support::GrowthModel, support::FitResult>>
rank_sweep_growth(const std::vector<SweepPoint>& points);

/// Standard size ladder 2^lo .. 2^hi.
std::vector<std::size_t> pow2_sizes(unsigned lo, unsigned hi);

}  // namespace beepmis::exp
