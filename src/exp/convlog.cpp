#include "src/exp/convlog.hpp"

#include <ostream>

#include "src/core/selfstab_mis.hpp"
#include "src/core/selfstab_mis2.hpp"
#include "src/support/check.hpp"

namespace beepmis::exp {

void ConvergenceLog::observe(const beep::Simulation& sim) {
  ConvergencePoint pt;
  pt.round = sim.round();
  for (beep::ChannelMask m : sim.last_sent()) {
    pt.beeps_ch1 += (m & beep::kChannel1) ? 1 : 0;
    pt.beeps_ch2 += (m & beep::kChannel2) ? 1 : 0;
  }

  const auto& base = sim.algorithm();
  if (auto* a1 = dynamic_cast<const core::SelfStabMis*>(&base)) {
    for (graph::VertexId v = 0; v < a1->node_count(); ++v)
      pt.prominent += a1->is_prominent(v);
    const auto stable = a1->stable_vertices();
    const auto mis = a1->mis_members();
    for (graph::VertexId v = 0; v < a1->node_count(); ++v) {
      pt.stable += stable[v];
      pt.mis += mis[v];
    }
  } else if (auto* a2 =
                 dynamic_cast<const core::SelfStabMisTwoChannel*>(&base)) {
    for (graph::VertexId v = 0; v < a2->node_count(); ++v)
      pt.prominent += a2->level(v) == 0;
    const auto stable = a2->stable_vertices();
    const auto mis = a2->mis_members();
    for (graph::VertexId v = 0; v < a2->node_count(); ++v) {
      pt.stable += stable[v];
      pt.mis += mis[v];
    }
  } else {
    BEEPMIS_CHECK(false, "convergence log: not a self-stab MIS simulation");
  }
  points_.push_back(pt);
}

void ConvergenceLog::write_csv(std::ostream& os) const {
  os << "round,prominent,stable,mis,beeps_ch1,beeps_ch2\n";
  for (const auto& p : points_)
    os << p.round << ',' << p.prominent << ',' << p.stable << ',' << p.mis
       << ',' << p.beeps_ch1 << ',' << p.beeps_ch2 << '\n';
}

}  // namespace beepmis::exp
