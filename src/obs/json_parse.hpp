#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace beepmis::obs {

/// Parsed JSON document node. Small, recursive, value-semantic — sized for
/// the artifacts this repo emits (manifests, dumps, bench captures), not for
/// adversarial inputs. Numbers are stored as doubles; every numeric field we
/// write fits a double exactly.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Object, Array };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  bool is_object() const noexcept { return type == Type::Object; }
  bool is_array() const noexcept { return type == Type::Array; }
  bool has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& at(const std::string& key) const { return object.at(key); }

  /// Lookup with defaults — `get("graph").get("n").as_number(0)` style
  /// traversal that never throws on missing members (returns a shared Null
  /// node instead).
  const JsonValue& get(const std::string& key) const;
  double as_number(double fallback = 0.0) const {
    return type == Type::Number ? number : fallback;
  }
  std::string as_string(const std::string& fallback = "") const {
    return type == Type::String ? str : fallback;
  }
};

/// Strict recursive-descent parse of one complete JSON document. Returns
/// false on any syntax error or trailing garbage; `error`, if non-null,
/// receives a short description with the byte offset.
bool json_parse(std::string_view text, JsonValue* out,
                std::string* error = nullptr);

}  // namespace beepmis::obs
