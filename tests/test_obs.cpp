#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/beep/network.hpp"
#include "src/beep/trace.hpp"
#include "src/core/fast_engine.hpp"
#include "src/core/lmax.hpp"
#include "src/core/selfstab_mis.hpp"
#include "src/core/selfstab_mis2.hpp"
#include "src/graph/generators.hpp"
#include "src/obs/json.hpp"
#include "src/obs/manifest.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/sink.hpp"
#include "src/obs/timing.hpp"

namespace beepmis {
namespace {

// --- Minimal strict JSON parser (tests only) -------------------------------
//
// Recursive-descent over the full document; any syntax error fails the
// parse. Numbers are kept as doubles (all values we emit fit exactly).

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Object, Array };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  bool has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  bool literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) return false;
            pos_ += 4;  // decoded value not needed by any test
            c = '?';
            break;
          default: return false;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number(double* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && (std::isdigit(s_[pos_]) || s_[pos_] == '.' ||
                                s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return false;
    try {
      *out = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }
  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->type = JsonValue::Type::String;
      return string(&out->str);
    }
    if (c == 't') {
      out->type = JsonValue::Type::Bool;
      out->boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::Bool;
      out->boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out->type = JsonValue::Type::Null;
      return literal("null");
    }
    out->type = JsonValue::Type::Number;
    return number(&out->number);
  }
  bool object(JsonValue* out) {
    out->type = JsonValue::Type::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue v;
      if (!value(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array(JsonValue* out) {
    out->type = JsonValue::Type::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(&v)) return false;
      out->array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

JsonValue parse_or_die(const std::string& text) {
  JsonValue v;
  JsonParser p(text);
  EXPECT_TRUE(p.parse(&v)) << "unparseable JSON: " << text;
  return v;
}

// --- Registry primitives ---------------------------------------------------

TEST(Metrics, CounterGaugeBasics) {
  obs::MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("a").inc();
  reg.counter("a").inc(41);
  EXPECT_EQ(reg.counter("a").value(), 42u);
  reg.gauge("g").set(2.5);
  reg.gauge("g").add(0.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 3.0);
  EXPECT_FALSE(reg.empty());
}

TEST(Metrics, RegisteredReferencesAreStable) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("a");
  // Registering many more names must not move the first node.
  for (int i = 0; i < 100; ++i) reg.counter("x" + std::to_string(i));
  a.inc();
  EXPECT_EQ(reg.counter("a").value(), 1u);
}

TEST(Metrics, HistogramBucketsPartitionTheRange) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucket_index(0), 0u);
  EXPECT_EQ(H::bucket_index(1), 1u);
  EXPECT_EQ(H::bucket_index(2), 2u);
  EXPECT_EQ(H::bucket_index(3), 2u);
  EXPECT_EQ(H::bucket_index(4), 3u);
  EXPECT_EQ(H::bucket_upper_bound(0), 0u);
  EXPECT_EQ(H::bucket_upper_bound(1), 1u);
  EXPECT_EQ(H::bucket_upper_bound(3), 7u);
  // Every value lands in the bucket whose range covers it.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 100ull, 65535ull, 1ull << 40}) {
    const unsigned i = H::bucket_index(v);
    EXPECT_LE(v, H::bucket_upper_bound(i));
    if (i > 0) {
      EXPECT_GT(v, H::bucket_upper_bound(i - 1));
    }
  }
}

TEST(Metrics, HistogramCountAndSum) {
  obs::Histogram h;
  std::uint64_t expect_sum = 0;
  for (std::uint64_t v = 0; v < 1000; v += 7) {
    h.record(v);
    expect_sum += v;
  }
  EXPECT_EQ(h.count(), 143u);
  EXPECT_EQ(h.sum(), expect_sum);
  std::uint64_t bucket_total = 0;
  for (const auto b : h.buckets()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(Metrics, ScopedTimerRecords) {
  obs::MetricsRegistry reg;
  {
    obs::ScopedTimer t(&reg, "work");
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(reg.timer("work").count(), 1u);
  EXPECT_GT(reg.timer("work").total_ns(), 0u);
  EXPECT_EQ(reg.timer("work").histogram().count(), 1u);
  // Null registry disarms without crashing or recording.
  { obs::ScopedTimer t(static_cast<obs::MetricsRegistry*>(nullptr), "work"); }
  EXPECT_EQ(reg.timer("work").count(), 1u);
}

// --- Shard merge (parallel sweep telemetry fold) ---------------------------

TEST(MetricsMerge, CountersAddAndMissingNamesAreCreated) {
  obs::MetricsRegistry a, b;
  a.counter("shared").inc(3);
  b.counter("shared").inc(39);
  b.counter("only_in_b").inc(7);
  a.merge(b);
  EXPECT_EQ(a.counter("shared").value(), 42u);
  EXPECT_EQ(a.counter("only_in_b").value(), 7u);
  // Merge reads, never writes, the source shard.
  EXPECT_EQ(b.counter("shared").value(), 39u);
}

TEST(MetricsMerge, GaugeIsLastWriter) {
  obs::MetricsRegistry a, b;
  a.gauge("g").set(1.0);
  b.gauge("g").set(2.5);
  a.merge(b);
  // Shards merge in ascending seed order, so the later shard's value is what
  // a serial run would have left behind.
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 2.5);
}

TEST(MetricsMerge, HistogramAndTimerFoldExactly) {
  // Two shards vs one serial registry over the same sample split.
  obs::MetricsRegistry serial, s1, s2, merged;
  for (std::uint64_t v = 0; v < 100; ++v) {
    serial.histogram("h").record(v);
    (v < 50 ? s1 : s2).histogram("h").record(v);
    serial.timer("t").record_ns(v * 1000);
    (v < 50 ? s1 : s2).timer("t").record_ns(v * 1000);
  }
  merged.merge(s1);
  merged.merge(s2);
  EXPECT_EQ(merged.histogram("h").count(), serial.histogram("h").count());
  EXPECT_EQ(merged.histogram("h").sum(), serial.histogram("h").sum());
  EXPECT_EQ(merged.histogram("h").buckets(), serial.histogram("h").buckets());
  EXPECT_EQ(merged.timer("t").count(), serial.timer("t").count());
  EXPECT_EQ(merged.timer("t").total_ns(), serial.timer("t").total_ns());
  EXPECT_EQ(merged.timer("t").max_ns(), serial.timer("t").max_ns());
  EXPECT_EQ(merged.timer("t").histogram().buckets(),
            serial.timer("t").histogram().buckets());
}

TEST(MetricsMerge, DigestFoldInSeedOrderMatchesSerialExactly) {
  // Per-replica shards hold few samples (well under Digest::kExact), so the
  // merge path is an in-order replay: folding shards in ascending seed order
  // must reproduce the serial digest bit-for-bit — including quantiles.
  obs::MetricsRegistry serial, merged;
  std::vector<obs::MetricsRegistry> shards(8);
  support::Rng rng(123);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (int k = 0; k < 5; ++k) {
      const double x = static_cast<double>(rng.below(10000));
      serial.digest("d").add(x);
      shards[s].digest("d").add(x);
    }
  }
  for (const auto& shard : shards) merged.merge(shard);
  const obs::Digest& m = merged.digest("d");
  const obs::Digest& ref = serial.digest("d");
  EXPECT_EQ(m.count(), ref.count());
  EXPECT_DOUBLE_EQ(m.sum(), ref.sum());
  EXPECT_DOUBLE_EQ(m.min(), ref.min());
  EXPECT_DOUBLE_EQ(m.max(), ref.max());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(m.quantile(q), ref.quantile(q)) << "q=" << q;
}

TEST(MetricsMerge, DigestMergeIsDeterministicForFixedOrder) {
  // Same shards, merged twice in the same order: identical state.
  auto build = [] {
    obs::MetricsRegistry merged;
    support::Rng rng(77);
    for (int s = 0; s < 4; ++s) {
      obs::MetricsRegistry shard;
      for (int k = 0; k < 200; ++k)  // > kExact: approximate fold path
        shard.digest("d").add(static_cast<double>(rng.below(1 << 20)));
      merged.merge(shard);
    }
    return merged;
  };
  obs::MetricsRegistry a = build(), b = build();
  for (double q : {0.5, 0.9, 0.95, 0.99})
    EXPECT_DOUBLE_EQ(a.digest("d").quantile(q), b.digest("d").quantile(q));
  EXPECT_DOUBLE_EQ(a.digest("d").sum(), b.digest("d").sum());
}

TEST(MetricsMerge, BigDigestKeepsExactCountSumMinMax) {
  // Beyond the head buffer the quantile fold is approximate, but the moment
  // statistics must survive the merge exactly.
  obs::Digest big;
  double sum = 0;
  for (int k = 0; k < 1000; ++k) {
    const double x = static_cast<double>((k * 7919) % 4093);
    big.add(x);
    sum += x;
  }
  obs::Digest target;
  target.add(5000.0);  // straddles big's range from above…
  target.add(-3.0);    // …and below, so min/max must come from target
  target.merge(big);
  EXPECT_EQ(target.count(), 1002u);
  EXPECT_DOUBLE_EQ(target.sum(), sum + 5000.0 - 3.0);
  EXPECT_DOUBLE_EQ(target.min(), -3.0);
  EXPECT_DOUBLE_EQ(target.max(), 5000.0);
}

TEST(BufferedSink, FlushReplaysInOrderAndForwardsAnalysisWish) {
  obs::MemorySink downstream(/*with_analysis=*/true);
  obs::BufferedSink buffer(&downstream);
  EXPECT_TRUE(buffer.wants_analysis());  // forwards the downstream's wish
  obs::RoundEvent e;
  for (std::uint64_t r = 1; r <= 5; ++r) {
    e.round = r;
    buffer.on_round(e);
  }
  EXPECT_EQ(buffer.size(), 5u);
  EXPECT_TRUE(downstream.events().empty());  // nothing leaks before flush
  buffer.flush();
  ASSERT_EQ(downstream.events().size(), 5u);
  for (std::uint64_t r = 1; r <= 5; ++r)
    EXPECT_EQ(downstream.events()[r - 1].round, r);
  EXPECT_EQ(buffer.size(), 0u);  // flush drains the buffer
  // A buffer with no downstream just accumulates; flush is a no-op drop.
  obs::BufferedSink detached;
  EXPECT_FALSE(detached.wants_analysis());
  detached.on_round(e);
  detached.flush();
  EXPECT_EQ(detached.size(), 0u);
}

// --- JSON emitters round-trip ----------------------------------------------

TEST(MetricsJson, RoundTripsThroughParser) {
  obs::MetricsRegistry reg;
  reg.counter("runs").inc(3);
  reg.gauge("speed").set(1.5);
  for (std::uint64_t v = 0; v < 100; ++v) reg.histogram("rounds").record(v);
  reg.timer("step").record_ns(12345);
  reg.timer("step").record_ns(67890);

  std::ostringstream out;
  reg.write_json(out);
  const JsonValue doc = parse_or_die(out.str());
  ASSERT_EQ(doc.type, JsonValue::Type::Object);
  ASSERT_TRUE(doc.has("counters"));
  ASSERT_TRUE(doc.has("gauges"));
  ASSERT_TRUE(doc.has("histograms"));
  ASSERT_TRUE(doc.has("timers"));
  EXPECT_DOUBLE_EQ(doc.at("counters").at("runs").number, 3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("speed").number, 1.5);

  // Histogram bucket counts must sum to the histogram's total count.
  const JsonValue& hist = doc.at("histograms").at("rounds");
  double bucket_sum = 0;
  for (const JsonValue& b : hist.at("buckets").array)
    bucket_sum += b.at("count").number;
  EXPECT_DOUBLE_EQ(bucket_sum, hist.at("count").number);
  EXPECT_DOUBLE_EQ(hist.at("count").number, 100.0);

  const JsonValue& timer = doc.at("timers").at("step");
  EXPECT_DOUBLE_EQ(timer.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(timer.at("total_ns").number, 12345.0 + 67890.0);
}

TEST(MetricsJson, StringsAreEscaped) {
  obs::MetricsRegistry reg;
  reg.counter("weird \"name\"\n\\tab").inc();
  std::ostringstream out;
  reg.write_json(out);
  const JsonValue doc = parse_or_die(out.str());
  EXPECT_TRUE(doc.at("counters").has("weird \"name\"\n\\tab"));
}

TEST(Manifest, RoundTripsWithMetrics) {
  obs::RunManifest man;
  man.tool = "test_obs";
  man.seed = 424242;
  man.graph_name = "er-avg8(n=256)";
  man.family = "er-avg8";
  man.n = 256;
  man.m = 1024;
  man.max_degree = 17;
  man.algorithm = "V1-global-delta";
  man.init_policy = "uniform-random";
  man.c1 = 2;
  man.wall_ms = 12.5;
  man.add_extra("stabilized", "yes");

  obs::MetricsRegistry reg;
  reg.counter("cli.runs_total").inc();
  reg.histogram("cli.rounds_to_stabilize").record(321);

  std::ostringstream out;
  obs::write_run_json(out, man, &reg);
  const JsonValue doc = parse_or_die(out.str());

  EXPECT_EQ(doc.at("schema").str, "beepmis.run.v1");
  EXPECT_EQ(doc.at("tool").str, "test_obs");
  EXPECT_DOUBLE_EQ(doc.at("seed").number, 424242.0);
  EXPECT_EQ(doc.at("graph").at("family").str, "er-avg8");
  EXPECT_DOUBLE_EQ(doc.at("graph").at("n").number, 256.0);
  EXPECT_DOUBLE_EQ(doc.at("graph").at("m").number, 1024.0);
  EXPECT_EQ(doc.at("algorithm").at("name").str, "V1-global-delta");
  EXPECT_DOUBLE_EQ(doc.at("algorithm").at("c1").number, 2.0);
  EXPECT_FALSE(doc.at("build").at("compiler").str.empty());
  ASSERT_TRUE(doc.at("timing").has("wall_ms"));
  EXPECT_EQ(doc.at("extra").at("stabilized").str, "yes");
  EXPECT_DOUBLE_EQ(
      doc.at("metrics").at("counters").at("cli.runs_total").number, 1.0);
}

TEST(Manifest, NullMetricsYieldsEmptyObject) {
  obs::RunManifest man;
  man.tool = "t";
  std::ostringstream out;
  obs::write_run_json(out, man, nullptr);
  const JsonValue doc = parse_or_die(out.str());
  EXPECT_TRUE(doc.at("metrics").object.empty());
}

// --- Per-round event stream from the simulator -----------------------------

std::unique_ptr<beep::Simulation> make_v1_sim(const graph::Graph& g,
                                              std::uint64_t seed,
                                              core::SelfStabMis** algo_out) {
  auto algo = std::make_unique<core::SelfStabMis>(
      g, core::lmax_global_delta(g));
  *algo_out = algo.get();
  return std::make_unique<beep::Simulation>(g, std::move(algo), seed);
}

TEST(EventStream, JsonlLinesParseIndependently) {
  support::Rng grng(11);
  const auto g = graph::make_erdos_renyi_avg_degree(64, 8.0, grng);
  core::SelfStabMis* algo = nullptr;
  auto sim = make_v1_sim(g, 21, &algo);
  support::Rng crng(1);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
    algo->corrupt_node(v, crng);

  std::ostringstream out;
  obs::JsonlSink sink(out, /*with_analysis=*/true);
  sim->add_observer(&sink);
  for (int r = 0; r < 50 && !algo->is_stabilized(); ++r) sim->step();
  ASSERT_GT(sink.lines_written(), 0u);

  std::istringstream lines(out.str());
  std::string line;
  std::uint64_t parsed = 0, expect_round = 1;
  while (std::getline(lines, line)) {
    const JsonValue doc = parse_or_die(line);
    // Schema: every cheap field plus lemma31 (analysis was requested).
    for (const char* key :
         {"round", "beeps_ch1", "beeps_ch2", "heard_ch1", "heard_ch2",
          "heard_any", "prominent", "stable", "mis", "active",
          "lemma31_violations"})
      EXPECT_TRUE(doc.has(key)) << key;
    EXPECT_DOUBLE_EQ(doc.at("round").number,
                     static_cast<double>(expect_round++));
    // |S_t| + active = n, always.
    EXPECT_DOUBLE_EQ(doc.at("stable").number + doc.at("active").number,
                     static_cast<double>(g.vertex_count()));
    ++parsed;
  }
  EXPECT_EQ(parsed, sink.lines_written());
}

TEST(EventStream, TruncatedJsonlKeepsEveryCompleteLineParseable) {
  // A crashed or killed run leaves a JSONL file cut mid-line. Every
  // complete line must still parse on its own — nothing about a line
  // depends on the lines after it.
  support::Rng grng(19);
  const auto g = graph::make_erdos_renyi_avg_degree(48, 6.0, grng);
  core::SelfStabMis* algo = nullptr;
  auto sim = make_v1_sim(g, 33, &algo);
  support::Rng crng(4);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
    algo->corrupt_node(v, crng);

  std::ostringstream out;
  obs::JsonlSink sink(out, /*with_analysis=*/true);
  sim->add_observer(&sink);
  for (int r = 0; r < 20; ++r) sim->step();
  const std::string full = out.str();
  ASSERT_GE(sink.lines_written(), 20u);

  // Cut in the middle of the final line.
  const std::size_t last_newline = full.rfind('\n', full.size() - 2);
  ASSERT_NE(last_newline, std::string::npos);
  const std::string truncated =
      full.substr(0, last_newline + 1 + (full.size() - last_newline) / 2);
  ASSERT_NE(truncated.back(), '\n');  // genuinely mid-line

  std::istringstream lines(truncated);
  std::string line;
  std::uint64_t parsed = 0;
  std::vector<std::string> complete;
  while (std::getline(lines, line)) complete.push_back(line);
  ASSERT_FALSE(complete.empty());
  complete.pop_back();  // the torn fragment
  for (const std::string& l : complete) {
    const JsonValue doc = parse_or_die(l);
    EXPECT_TRUE(doc.has("round"));
    ++parsed;
  }
  EXPECT_EQ(parsed, sink.lines_written() - 1);
}

namespace {

/// Appends its id to a shared log on every event — order probe for the tee.
class OrderProbe final : public obs::RoundObserver {
 public:
  OrderProbe(int id, std::vector<int>* log, bool wants)
      : id_(id), log_(log), wants_(wants) {}
  void on_round(const obs::RoundEvent&) override { log_->push_back(id_); }
  bool wants_analysis() const override { return wants_; }

 private:
  int id_;
  std::vector<int>* log_;
  bool wants_;
};

}  // namespace

TEST(EventStream, TeeObserverFansOutInAddOrder) {
  std::vector<int> log;
  OrderProbe a(1, &log, false), b(2, &log, false), c(3, &log, true);
  obs::TeeObserver tee;
  EXPECT_TRUE(tee.empty());
  EXPECT_FALSE(tee.wants_analysis());
  tee.add(&a);
  tee.add(&b);
  tee.add(&c);
  EXPECT_FALSE(tee.empty());
  EXPECT_TRUE(tee.wants_analysis());  // any child wanting analysis suffices

  obs::RoundEvent e;
  e.round = 1;
  tee.on_round(e);
  e.round = 2;
  tee.on_round(e);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 1, 2, 3}));
}

TEST(EventStream, AnalysisFieldOmittedWhenNotWanted) {
  const auto g = graph::make_path(8);
  core::SelfStabMis* algo = nullptr;
  auto sim = make_v1_sim(g, 3, &algo);
  std::ostringstream out;
  obs::JsonlSink sink(out, /*with_analysis=*/false);
  sim->add_observer(&sink);
  sim->step();
  const JsonValue doc = parse_or_die(out.str().substr(0, out.str().find('\n')));
  EXPECT_FALSE(doc.has("lemma31_violations"));
}

TEST(EventStream, LemmaViolationsVanishOnceStabilized) {
  support::Rng grng(14);
  const auto g = graph::make_erdos_renyi_avg_degree(48, 6.0, grng);
  core::SelfStabMis* algo = nullptr;
  auto sim = make_v1_sim(g, 8, &algo);
  support::Rng crng(2);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
    algo->corrupt_node(v, crng);
  obs::MemorySink sink(/*with_analysis=*/true);
  sim->add_observer(&sink);
  while (!algo->is_stabilized() && sim->round() < 100000) sim->step();
  ASSERT_TRUE(algo->is_stabilized());
  const auto& last = sink.events().back();
  EXPECT_TRUE(last.has_analysis);
  EXPECT_EQ(last.lemma31_violations, 0u);
  EXPECT_EQ(last.active, 0u);
  EXPECT_EQ(last.stable, g.vertex_count());
}

// --- Satellite: Trace per-channel heard counts (V3 regression) -------------

TEST(Trace, PerChannelHeardCountsOnTwoChannelRun) {
  support::Rng grng(12);
  const auto g = graph::make_erdos_renyi_avg_degree(64, 8.0, grng);
  auto algo = std::make_unique<core::SelfStabMisTwoChannel>(
      g, core::lmax_one_hop(g));
  auto* a = algo.get();
  beep::Simulation sim(g, std::move(algo), 17);
  support::Rng crng(4);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
    a->corrupt_node(v, crng);

  beep::Trace trace;
  obs::MemorySink sink;
  sim.add_observer(&sink);
  while (!a->is_stabilized() && sim.round() < 100000) {
    sim.step();
    trace.observe(sim);
  }
  ASSERT_TRUE(a->is_stabilized());

  // total_beeps() is documented as the ch1 + ch2 sum; the simulation keeps
  // independent per-channel totals — they must agree.
  std::uint64_t beeps1 = 0, beeps2 = 0, heard1 = 0, heard2 = 0;
  for (const auto& r : trace.records()) {
    beeps1 += r.beeps_ch1;
    beeps2 += r.beeps_ch2;
    heard1 += r.heard_ch1;
    heard2 += r.heard_ch2;
    EXPECT_LE(r.heard_ch1, static_cast<std::uint32_t>(g.vertex_count()));
    EXPECT_LE(r.heard_any, r.heard_ch1 + r.heard_ch2);
    EXPECT_GE(r.heard_any, std::max(r.heard_ch1, r.heard_ch2));
  }
  EXPECT_EQ(trace.total_beeps(), beeps1 + beeps2);
  EXPECT_EQ(trace.total_beeps(), sim.total_beeps(0) + sim.total_beeps(1));
  // Algorithm 2 genuinely uses both channels: each must have been heard.
  EXPECT_GT(heard1, 0u);
  EXPECT_GT(heard2, 0u);

  // The observer stream saw the same per-round communication census.
  ASSERT_EQ(sink.events().size(), trace.records().size());
  for (std::size_t i = 0; i < sink.events().size(); ++i) {
    EXPECT_EQ(sink.events()[i].beeps_ch1, trace.records()[i].beeps_ch1);
    EXPECT_EQ(sink.events()[i].beeps_ch2, trace.records()[i].beeps_ch2);
    EXPECT_EQ(sink.events()[i].heard_ch1, trace.records()[i].heard_ch1);
    EXPECT_EQ(sink.events()[i].heard_ch2, trace.records()[i].heard_ch2);
    EXPECT_EQ(sink.events()[i].heard_any, trace.records()[i].heard_any);
  }
}

// --- Satellite: engine active-count time series ----------------------------

TEST(FastEngineEvents, ActiveCountMonotoneNonIncreasingFaultFree) {
  support::Rng grng(13);
  const auto g = graph::make_erdos_renyi_avg_degree(256, 8.0, grng);
  core::FastMisEngine fast(g, core::lmax_global_delta(g), 6);
  support::Rng irng(7);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
    const auto span = static_cast<std::uint64_t>(2 * fast.lmax(v) + 1);
    fast.set_level(v,
                   static_cast<std::int32_t>(irng.below(span)) - fast.lmax(v));
  }
  obs::MemorySink sink;
  fast.set_observer(&sink);
  fast.run_to_stabilization(100000);
  ASSERT_TRUE(fast.is_stabilized());
  ASSERT_FALSE(sink.events().empty());

  // Fault-free (no set_level after the run started): once settled, always
  // settled, so the active series never increases.
  std::uint32_t prev = static_cast<std::uint32_t>(g.vertex_count());
  for (const auto& e : sink.events()) {
    EXPECT_LE(e.active, prev) << "round " << e.round;
    EXPECT_EQ(e.active + e.stable, g.vertex_count());
    prev = e.active;
  }
  EXPECT_EQ(sink.events().back().active, 0u);
  const auto members = fast.mis_members();
  EXPECT_EQ(sink.events().back().mis,
            static_cast<std::uint32_t>(
                std::count(members.begin(), members.end(), true)));
}

// --- Satellite: equivalence guard (simulator vs fast engine streams) -------

TEST(FastEngineEvents, IdenticalEventStreamToReferenceSimulatorV1) {
  support::Rng grng(15);
  const auto graphs = {
      graph::make_path(24),
      graph::make_star(24),
      graph::make_erdos_renyi(64, 0.08, grng),
  };
  for (const auto& g : graphs) {
    const auto lmax = core::lmax_global_delta(g);
    auto algo = std::make_unique<core::SelfStabMis>(g, lmax);
    auto* a = algo.get();
    beep::Simulation sim(g, std::move(algo), 99, {}, beep::Duplex::Full,
                         beep::RngMode::Counter);
    core::FastMisEngine fast(g, lmax, 99);
    support::Rng crng(7);
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
      a->corrupt_node(v, crng);
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
      fast.set_level(v, a->level(v));

    obs::MemorySink ref_sink(/*with_analysis=*/true);
    obs::MemorySink fast_sink(/*with_analysis=*/true);
    sim.add_observer(&ref_sink);
    fast.set_observer(&fast_sink);
    for (int r = 0; r < 300; ++r) {
      sim.step();
      fast.step();
    }
    ASSERT_EQ(ref_sink.events().size(), fast_sink.events().size());
    for (std::size_t i = 0; i < ref_sink.events().size(); ++i)
      ASSERT_EQ(ref_sink.events()[i], fast_sink.events()[i])
          << g.name() << " event " << i;
  }
}

TEST(FastEngineEvents, IdenticalEventStreamToReferenceSimulatorV3) {
  support::Rng grng(16);
  const auto graphs = {
      graph::make_path(24),
      graph::make_star(24),
      graph::make_erdos_renyi(64, 0.08, grng),
  };
  for (const auto& g : graphs) {
    const auto lmax = core::lmax_one_hop(g);
    auto algo = std::make_unique<core::SelfStabMisTwoChannel>(g, lmax);
    auto* a = algo.get();
    beep::Simulation sim(g, std::move(algo), 77, {}, beep::Duplex::Full,
                         beep::RngMode::Counter);
    core::FastMisEngine2 fast(g, lmax, 77);
    support::Rng crng(3);
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
      a->corrupt_node(v, crng);
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
      fast.set_level(v, a->level(v));

    obs::MemorySink ref_sink(/*with_analysis=*/true);
    obs::MemorySink fast_sink(/*with_analysis=*/true);
    sim.add_observer(&ref_sink);
    fast.set_observer(&fast_sink);
    for (int r = 0; r < 300; ++r) {
      sim.step();
      fast.step();
    }
    ASSERT_EQ(ref_sink.events().size(), fast_sink.events().size());
    for (std::size_t i = 0; i < ref_sink.events().size(); ++i)
      ASSERT_EQ(ref_sink.events()[i], fast_sink.events()[i])
          << g.name() << " event " << i;
  }
}

TEST(FastEngineEvents, EngineTimersLandInRegistry) {
  const auto g = graph::make_path(16);
  core::FastMisEngine fast(g, core::lmax_global_delta(g), 2);
  obs::MetricsRegistry reg;
  fast.set_metrics(&reg);
  fast.set_level(0, 1);  // dirty the settlement cache
  fast.step();
  // Timer keys carry the variant tag and the resolved kernel so two engines
  // sharing a registry don't blend their timings.
  const std::string key =
      "fast_engine.alg1." + fast.kernel_name() + ".refresh_settlement";
  EXPECT_GE(reg.timer(key).count(), 1u);
  EXPECT_EQ(reg.timer("fast_engine.refresh_settlement").count(), 0u);
  EXPECT_EQ(reg.timer("fast_engine.alg1.refresh_settlement").count(), 0u);
}

}  // namespace
}  // namespace beepmis
