/// E11 — micro-benchmarks of the simulator and the algorithms: round
/// throughput (node·rounds/s), per-component costs (decide, feedback, OR
/// aggregation, stabilization detector), and graph construction. These are
/// engineering numbers for the simulator substrate, not paper claims.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/beep/network.hpp"
#include "src/core/fast_engine.hpp"
#include "src/core/init.hpp"
#include "src/core/lmax.hpp"
#include "src/core/observers.hpp"
#include "src/core/selfstab_mis.hpp"
#include "src/core/selfstab_mis2.hpp"
#include "src/exp/families.hpp"
#include "src/graph/generators.hpp"

namespace {

using namespace beepmis;

graph::Graph make_er(std::size_t n) {
  support::Rng rng(1);
  return graph::make_erdos_renyi_avg_degree(n, 8.0, rng);
}

void BM_SimulationRound_Algo1(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph g = make_er(n);
  auto algo = std::make_unique<core::SelfStabMis>(
      g, core::lmax_global_delta(g));
  auto* a = algo.get();
  beep::Simulation sim(g, std::move(algo), 3);
  support::Rng irng(5);
  core::apply_init(*a, core::InitPolicy::UniformRandom, irng);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulationRound_Algo1)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_SimulationRound_Algo2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph g = make_er(n);
  auto algo = std::make_unique<core::SelfStabMisTwoChannel>(
      g, core::lmax_one_hop(g));
  auto* a = algo.get();
  beep::Simulation sim(g, std::move(algo), 3);
  support::Rng irng(5);
  core::apply_init(*a, core::InitPolicy::UniformRandom, irng);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulationRound_Algo2)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_StabilizationDetector(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph g = make_er(n);
  core::SelfStabMis a(g, core::lmax_global_delta(g));
  support::Rng irng(5);
  core::apply_init(a, core::InitPolicy::UniformRandom, irng);
  for (auto _ : state) benchmark::DoNotOptimize(a.is_stabilized());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StabilizationDetector)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_AnalysisSnapshot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph g = make_er(n);
  core::SelfStabMis a(g, core::lmax_global_delta(g));
  support::Rng irng(5);
  core::apply_init(a, core::InitPolicy::UniformRandom, irng);
  for (auto _ : state) benchmark::DoNotOptimize(core::analysis_snapshot(a));
}
BENCHMARK(BM_AnalysisSnapshot)->Arg(1 << 10)->Arg(1 << 14);

void BM_FullStabilizationRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph g = make_er(n);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto algo = std::make_unique<core::SelfStabMis>(
        g, core::lmax_global_delta(g));
    auto* a = algo.get();
    beep::Simulation sim(g, std::move(algo), ++seed);
    support::Rng irng(seed);
    core::apply_init(*a, core::InitPolicy::UniformRandom, irng);
    sim.run_until(
        [&](const beep::Simulation&) { return a->is_stabilized(); }, 100000);
    benchmark::DoNotOptimize(sim.round());
  }
}
BENCHMARK(BM_FullStabilizationRun)->Arg(1 << 10)->Arg(1 << 13);

void BM_FullStabilizationRun_FastEngine(benchmark::State& state) {
  // Same workload as BM_FullStabilizationRun, on the settled-set-skipping
  // engine (equivalence is proven in test_fast_engine.cpp; this measures
  // what the optimization buys).
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph g = make_er(n);
  const auto lmax = core::lmax_global_delta(g);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    core::FastMisEngine fast(g, lmax, ++seed);
    support::Rng irng(seed);
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
      const auto span = static_cast<std::uint64_t>(2 * lmax[v] + 1);
      fast.set_level(v,
                     static_cast<std::int32_t>(irng.below(span)) - lmax[v]);
    }
    fast.run_to_stabilization(100000);
    benchmark::DoNotOptimize(fast.round());
  }
}
BENCHMARK(BM_FullStabilizationRun_FastEngine)->Arg(1 << 10)->Arg(1 << 13);

void BM_GraphGeneration_ER(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(2);
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::make_erdos_renyi_avg_degree(n, 8.0, rng));
}
BENCHMARK(BM_GraphGeneration_ER)->Arg(1 << 12)->Arg(1 << 16);

void BM_RngBernoulliPow2(benchmark::State& state) {
  support::Rng rng(3);
  unsigned k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.bernoulli_pow2(k));
    k = k % 20 + 1;
  }
}
BENCHMARK(BM_RngBernoulliPow2);

}  // namespace
