#pragma once

/// Shared header/format helpers for the experiment benches. Every bench
/// prints a banner naming the paper artifact it regenerates, then one or
/// more support::Table blocks, so bench_output.txt is self-describing.

#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "src/obs/perf.hpp"
#include "src/support/fit.hpp"
#include "src/support/table.hpp"

namespace beepmis::bench {

inline void banner(const char* id, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

inline void print_growth_ranking(
    const std::vector<std::pair<support::GrowthModel, support::FitResult>>&
        ranked,
    const char* expected) {
  std::printf("growth-model fit of median stabilization time (best first):\n");
  for (const auto& [model, fit] : ranked) {
    std::printf("  T(n) = %7.2f + %7.2f * %-18s  R^2 = %.4f\n", fit.intercept,
                fit.slope, support::growth_model_name(model).c_str(), fit.r2);
  }
  std::printf("expected by the paper: %s\n", expected);
}

/// Per-benchmark hardware-counter capture: opens an obs::PerfGroup on
/// construction and turns the cumulative deltas into per-iteration values
/// for google-benchmark's state.counters. Construct right before the timing
/// loop, call per_iteration(state.iterations()) right after it. When
/// perf_event_open is denied (paranoid sysctl, no PMU in the container) the
/// result is simply empty — the bench still runs and reports timing.
class PerfCapture {
 public:
  PerfCapture() { armed_ = group_.open() && group_.read(&start_); }

  /// (counter-name, delta / iterations) for every counter the kernel
  /// granted; empty when unavailable or `iterations` is 0.
  std::vector<std::pair<const char*, double>> per_iteration(
      std::uint64_t iterations) {
    std::vector<std::pair<const char*, double>> out;
    obs::PerfGroup::Reading now{};
    if (!armed_ || iterations == 0 || !group_.read(&now)) return out;
    for (std::size_t i = 0; i < obs::PerfGroup::kCounters; ++i) {
      if ((group_.mask() & (1u << i)) == 0) continue;
      out.emplace_back(obs::PerfGroup::counter_name(i),
                       (now.value[i] - start_.value[i]) /
                           static_cast<double>(iterations));
    }
    return out;
  }

 private:
  obs::PerfGroup group_;
  obs::PerfGroup::Reading start_{};
  bool armed_ = false;
};

}  // namespace beepmis::bench
