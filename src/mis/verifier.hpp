#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/support/rng.hpp"

namespace beepmis::mis {

/// membership[v] == true iff v is in the candidate set. All checks are
/// performed by an omniscient external observer — they are verification
/// tooling, not part of any distributed algorithm.

/// No two members are adjacent.
bool is_independent(const graph::Graph& g, const std::vector<bool>& membership);

/// Every non-member has a member neighbor (i.e. the set is dominating, which
/// for an independent set is exactly maximality).
bool is_maximal(const graph::Graph& g, const std::vector<bool>& membership);

/// Independent and maximal.
bool is_mis(const graph::Graph& g, const std::vector<bool>& membership);

std::size_t member_count(const std::vector<bool>& membership);

/// Reference sequential greedy MIS in the given vertex order (identity order
/// if `order` is empty). Used as ground truth in tests and size comparisons.
std::vector<bool> greedy_mis(const graph::Graph& g,
                             std::span<const graph::VertexId> order = {});

/// Greedy MIS in a uniformly random order.
std::vector<bool> random_greedy_mis(const graph::Graph& g, support::Rng& rng);

}  // namespace beepmis::mis
