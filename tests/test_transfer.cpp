#include "src/core/transfer.hpp"

#include <gtest/gtest.h>

#include "src/beep/network.hpp"
#include "src/core/init.hpp"
#include "src/core/lmax.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/perturb.hpp"
#include "src/mis/verifier.hpp"

namespace beepmis::core {
namespace {

TEST(Transfer, CopiesLevelsVerbatimWhenRangesMatch) {
  const auto g = graph::make_cycle(10);
  SelfStabMis a(g, lmax_global_delta(g, 15));
  SelfStabMis b(g, lmax_global_delta(g, 15));
  support::Rng rng(1);
  apply_init(a, InitPolicy::UniformRandom, rng);
  carry_levels(a, b);
  for (graph::VertexId v = 0; v < 10; ++v)
    EXPECT_EQ(b.level(v), a.level(v));
}

TEST(Transfer, ClampsIntoSmallerRange) {
  const auto g = graph::make_path(4);
  SelfStabMis a(g, LmaxVector(4, 20));
  SelfStabMis b(g, LmaxVector(4, 5));
  a.set_level(0, -20);
  a.set_level(1, 20);
  a.set_level(2, 3);
  a.set_level(3, -7);
  carry_levels(a, b);
  EXPECT_EQ(b.level(0), -5);
  EXPECT_EQ(b.level(1), 5);
  EXPECT_EQ(b.level(2), 3);
  EXPECT_EQ(b.level(3), -5);
}

TEST(Transfer, TwoChannelClampsToNonNegative) {
  const auto g = graph::make_path(3);
  SelfStabMisTwoChannel a(g, LmaxVector(3, 9));
  SelfStabMisTwoChannel b(g, LmaxVector(3, 4));
  a.set_level(0, 0);
  a.set_level(1, 9);
  a.set_level(2, 2);
  carry_levels(a, b);
  EXPECT_EQ(b.level(0), 0);
  EXPECT_EQ(b.level(1), 4);
  EXPECT_EQ(b.level(2), 2);
}

TEST(TransferDeath, SizeMismatchAborts) {
  const auto g3 = graph::make_path(3);
  const auto g4 = graph::make_path(4);
  SelfStabMis a(g3, LmaxVector(3, 5));
  SelfStabMis b(g4, LmaxVector(4, 5));
  EXPECT_DEATH(carry_levels(a, b), "identical vertex sets");
}

TEST(Transfer, ChurnedTopologyRestabilizes) {
  // End-to-end dynamic-network flow: stabilize, churn edges, carry levels
  // onto the new topology, re-stabilize to a valid MIS of the NEW graph.
  support::Rng grng(5);
  const auto g0 = graph::make_erdos_renyi_avg_degree(128, 8.0, grng);
  auto algo0 = std::make_unique<SelfStabMis>(g0, lmax_global_delta(g0),
                                             Knowledge::GlobalMaxDegree);
  auto* a0 = algo0.get();
  beep::Simulation sim0(g0, std::move(algo0), 3);
  support::Rng irng(4);
  apply_init(*a0, InitPolicy::UniformRandom, irng);
  sim0.run_until(
      [&](const beep::Simulation&) { return a0->is_stabilized(); }, 20000);
  ASSERT_TRUE(a0->is_stabilized());

  support::Rng crng(6);
  const auto g1 = graph::perturb_edges(g0, 40, 40, crng);
  auto algo1 = std::make_unique<SelfStabMis>(g1, lmax_global_delta(g1),
                                             Knowledge::GlobalMaxDegree);
  auto* a1 = algo1.get();
  carry_levels(*a0, *a1);
  beep::Simulation sim1(g1, std::move(algo1), 7);
  sim1.run_until(
      [&](const beep::Simulation&) { return a1->is_stabilized(); }, 20000);
  ASSERT_TRUE(a1->is_stabilized());
  EXPECT_TRUE(mis::is_mis(g1, a1->mis_members()));
}

}  // namespace
}  // namespace beepmis::core
