#pragma once

#include <cstddef>
#include <vector>

#include "src/graph/graph.hpp"

namespace beepmis::graph {

/// Aggregate degree statistics of a graph.
struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  std::size_t isolated = 0;  ///< number of degree-0 vertices
};

DegreeStats degree_stats(const Graph& g);

/// deg₂(v) = max degree over the closed neighborhood N⁺(v) — the quantity
/// Corollary 2.3's lmax policy is allowed to know.
std::vector<std::size_t> two_hop_max_degree(const Graph& g);

/// Number of connected components.
std::size_t connected_component_count(const Graph& g);

bool is_connected(const Graph& g);

/// True iff every vertex has degree exactly d.
bool is_regular(const Graph& g, std::size_t d);

/// True iff the graph contains no triangle (O(m·Δ); test-sized graphs only).
bool is_triangle_free(const Graph& g);

/// Graph diameter via BFS from every vertex (test-sized graphs only).
/// Returns 0 for n <= 1; aborts if the graph is disconnected.
std::size_t diameter(const Graph& g);

/// Hop distances from `src` to every vertex (SIZE_MAX = unreachable).
std::vector<std::size_t> bfs_distances(const Graph& g, VertexId src);

/// k-th graph power G^k: same vertices, edge {u,v} iff 0 < dist(u,v) <= k.
/// O(n·(n+m)); intended for application-layer reductions on moderate n.
Graph graph_power(const Graph& g, std::size_t k);

/// The edges of g in canonical order (u < v, lexicographic): the vertex
/// numbering used by line_graph.
std::vector<std::pair<VertexId, VertexId>> edge_list(const Graph& g);

/// Line graph L(G): one vertex per edge of G (numbered per edge_list),
/// adjacent iff the edges share an endpoint. MIS(L(G)) = maximal matching
/// of G — the reduction behind apps/matching.
Graph line_graph(const Graph& g);

}  // namespace beepmis::graph
