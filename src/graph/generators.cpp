#include "src/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "src/support/check.hpp"

namespace beepmis::graph {

namespace {

std::string fmt_name(const char* fmt, auto... args) {
  char buf[128];
  std::snprintf(buf, sizeof buf, fmt, args...);
  return buf;
}

}  // namespace

Graph make_path(std::size_t n) {
  GraphBuilder b(n, fmt_name("path_n%zu", n));
  for (std::size_t i = 0; i + 1 < n; ++i)
    b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  return std::move(b).build();
}

Graph make_cycle(std::size_t n) {
  BEEPMIS_CHECK(n >= 3, "cycle needs n >= 3");
  GraphBuilder b(n, fmt_name("cycle_n%zu", n));
  for (std::size_t i = 0; i < n; ++i)
    b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n));
  return std::move(b).build();
}

Graph make_star(std::size_t n) {
  BEEPMIS_CHECK(n >= 1, "star needs n >= 1");
  GraphBuilder b(n, fmt_name("star_n%zu", n));
  for (std::size_t i = 1; i < n; ++i) b.add_edge(0, static_cast<VertexId>(i));
  return std::move(b).build();
}

Graph make_complete(std::size_t n) {
  GraphBuilder b(n, fmt_name("complete_n%zu", n));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
  return std::move(b).build();
}

Graph make_complete_bipartite(std::size_t a, std::size_t b_) {
  GraphBuilder b(a + b_, fmt_name("kab_a%zu_b%zu", a, b_));
  for (std::size_t i = 0; i < a; ++i)
    for (std::size_t j = 0; j < b_; ++j)
      b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(a + j));
  return std::move(b).build();
}

Graph make_grid(std::size_t rows, std::size_t cols, bool torus) {
  BEEPMIS_CHECK(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  if (torus) BEEPMIS_CHECK(rows >= 3 && cols >= 3, "torus needs dims >= 3");
  GraphBuilder b(rows * cols,
                 fmt_name(torus ? "torus_%zux%zu" : "grid_%zux%zu", rows, cols));
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
      if (torus) {
        if (c + 1 == cols) b.add_edge(id(r, c), id(r, 0));
        if (r + 1 == rows) b.add_edge(id(r, c), id(0, c));
      }
    }
  }
  return std::move(b).build();
}

Graph make_binary_tree(std::size_t n) {
  GraphBuilder b(n, fmt_name("btree_n%zu", n));
  for (std::size_t i = 1; i < n; ++i)
    b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>((i - 1) / 2));
  return std::move(b).build();
}

Graph make_hypercube(std::size_t dim) {
  BEEPMIS_CHECK(dim < 30, "hypercube dimension too large");
  const std::size_t n = std::size_t{1} << dim;
  GraphBuilder b(n, fmt_name("hypercube_d%zu", dim));
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t bit = 0; bit < dim; ++bit) {
      const std::size_t u = v ^ (std::size_t{1} << bit);
      if (u > v) b.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(u));
    }
  return std::move(b).build();
}

Graph make_caterpillar(std::size_t spine, std::size_t legs) {
  BEEPMIS_CHECK(spine >= 1, "caterpillar needs a spine");
  const std::size_t n = spine * (1 + legs);
  GraphBuilder b(n, fmt_name("caterpillar_s%zu_l%zu", spine, legs));
  for (std::size_t i = 0; i + 1 < spine; ++i)
    b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  for (std::size_t i = 0; i < spine; ++i)
    for (std::size_t j = 0; j < legs; ++j)
      b.add_edge(static_cast<VertexId>(i),
                 static_cast<VertexId>(spine + i * legs + j));
  return std::move(b).build();
}

Graph make_lollipop(std::size_t clique, std::size_t path) {
  BEEPMIS_CHECK(clique >= 1, "lollipop needs a clique part");
  GraphBuilder b(clique + path, fmt_name("lollipop_k%zu_p%zu", clique, path));
  for (std::size_t i = 0; i < clique; ++i)
    for (std::size_t j = i + 1; j < clique; ++j)
      b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
  for (std::size_t i = 0; i < path; ++i) {
    const std::size_t prev = i == 0 ? clique - 1 : clique + i - 1;
    b.add_edge(static_cast<VertexId>(prev), static_cast<VertexId>(clique + i));
  }
  return std::move(b).build();
}

Graph make_star_of_cliques(std::size_t cliques, std::size_t k) {
  BEEPMIS_CHECK(cliques >= 1 && k >= 1, "star_of_cliques needs positive sizes");
  const std::size_t n = 1 + cliques * k;  // vertex 0 is the hub
  GraphBuilder b(n, fmt_name("starcliques_c%zu_k%zu", cliques, k));
  for (std::size_t c = 0; c < cliques; ++c) {
    const std::size_t base = 1 + c * k;
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = i + 1; j < k; ++j)
        b.add_edge(static_cast<VertexId>(base + i),
                   static_cast<VertexId>(base + j));
    b.add_edge(0, static_cast<VertexId>(base));
  }
  return std::move(b).build();
}

Graph make_erdos_renyi(std::size_t n, double p, Rng& rng) {
  BEEPMIS_CHECK(p >= 0.0 && p <= 1.0, "edge probability outside [0,1]");
  GraphBuilder b(n, fmt_name("er_n%zu_p%.4f", n, p));
  if (p > 0.0 && n >= 2) {
    // Geometric skipping (Batagelj–Brandes): expected O(n + m) time.
    const double logq = std::log1p(-p);
    std::size_t v = 1, w = static_cast<std::size_t>(-1);
    while (v < n) {
      const double r = rng.uniform01();
      // skip length ~ Geometric(p)
      w += (p < 1.0)
               ? 1 + static_cast<std::size_t>(std::floor(std::log1p(-r) / logq))
               : 1;
      while (w >= v && v < n) {
        w -= v;
        ++v;
      }
      if (v < n)
        b.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(w));
    }
  }
  return std::move(b).build();
}

Graph make_erdos_renyi_avg_degree(std::size_t n, double avg_degree, Rng& rng) {
  BEEPMIS_CHECK(n >= 2, "need n >= 2");
  const double p = std::min(1.0, avg_degree / static_cast<double>(n - 1));
  return make_erdos_renyi(n, p, rng);
}

Graph make_random_regular(std::size_t n, std::size_t d, Rng& rng) {
  BEEPMIS_CHECK(d < n, "regular degree must be < n");
  BEEPMIS_CHECK((n * d) % 2 == 0, "n*d must be even");
  // Steger–Wormald style pairing: repeatedly draw a uniformly random pair of
  // remaining stubs, accepting only legal pairs (no loop, no parallel edge);
  // restart the construction if no progress is possible. For fixed d the
  // expected number of restarts is O(1), unlike plain configuration-model
  // rejection whose acceptance probability decays like e^{-Θ(d²)}.
  for (int attempt = 0; attempt < 10000; ++attempt) {
    std::vector<VertexId> stubs;
    stubs.reserve(n * d);
    for (std::size_t v = 0; v < n; ++v)
      for (std::size_t i = 0; i < d; ++i)
        stubs.push_back(static_cast<VertexId>(v));
    std::set<std::pair<VertexId, VertexId>> seen;
    bool stuck = false;
    while (!stubs.empty() && !stuck) {
      // Try a bounded number of random pair draws before declaring a dead
      // end (possible only near the end of the process).
      bool matched = false;
      for (int tries = 0; tries < 64; ++tries) {
        const std::size_t i = rng.below(stubs.size());
        std::size_t j = rng.below(stubs.size() - 1);
        if (j >= i) ++j;
        VertexId u = stubs[i], v = stubs[j];
        if (u == v) continue;
        if (u > v) std::swap(u, v);
        if (!seen.emplace(u, v).second) continue;
        // Remove the two stubs (larger index first).
        const std::size_t hi = std::max(i, j), lo = std::min(i, j);
        stubs[hi] = stubs.back();
        stubs.pop_back();
        stubs[lo] = stubs.back();
        stubs.pop_back();
        matched = true;
        break;
      }
      stuck = !matched;
    }
    if (stuck) continue;
    GraphBuilder b(n, fmt_name("regular_n%zu_d%zu", n, d));
    for (const auto& [u, v] : seen) b.add_edge(u, v);
    return std::move(b).build();
  }
  BEEPMIS_CHECK(false, "random regular graph: too many rejections");
  return Graph{};
}

Graph make_barabasi_albert(std::size_t n, std::size_t m, Rng& rng) {
  BEEPMIS_CHECK(m >= 1 && n > m, "BA needs n > m >= 1");
  GraphBuilder b(n, fmt_name("ba_n%zu_m%zu", n, m));
  // Repeated-endpoint list: sampling a uniform element of `targets` is
  // degree-proportional sampling.
  std::vector<VertexId> targets;
  // Seed: star on the first m+1 vertices.
  for (std::size_t i = 0; i < m; ++i) {
    b.add_edge(static_cast<VertexId>(m), static_cast<VertexId>(i));
    targets.push_back(static_cast<VertexId>(i));
    targets.push_back(static_cast<VertexId>(m));
  }
  for (std::size_t v = m + 1; v < n; ++v) {
    std::set<VertexId> chosen;
    while (chosen.size() < m)
      chosen.insert(targets[rng.below(targets.size())]);
    for (VertexId u : chosen) {
      b.add_edge(static_cast<VertexId>(v), u);
      targets.push_back(u);
      targets.push_back(static_cast<VertexId>(v));
    }
  }
  return std::move(b).build();
}

Graph make_random_geometric(std::size_t n, double radius, Rng& rng) {
  BEEPMIS_CHECK(radius > 0.0, "radius must be positive");
  GraphBuilder b(n, fmt_name("rgg_n%zu_r%.3f", n, radius));
  std::vector<std::pair<double, double>> pts(n);
  for (auto& [x, y] : pts) {
    x = rng.uniform01();
    y = rng.uniform01();
  }
  // Uniform grid binning: expected O(n) for constant expected degree.
  const auto cells = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(1.0 / radius)));
  const double cell = 1.0 / static_cast<double>(cells);
  std::vector<std::vector<VertexId>> grid(cells * cells);
  auto cell_of = [&](double x) {
    auto c = static_cast<std::size_t>(x / cell);
    return std::min(c, cells - 1);
  };
  for (std::size_t i = 0; i < n; ++i)
    grid[cell_of(pts[i].first) * cells + cell_of(pts[i].second)].push_back(
        static_cast<VertexId>(i));
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cx = cell_of(pts[i].first), cy = cell_of(pts[i].second);
    for (std::size_t dx = (cx == 0 ? 0 : cx - 1); dx <= std::min(cx + 1, cells - 1); ++dx)
      for (std::size_t dy = (cy == 0 ? 0 : cy - 1); dy <= std::min(cy + 1, cells - 1); ++dy)
        for (VertexId j : grid[dx * cells + dy]) {
          if (j <= i) continue;
          const double ddx = pts[i].first - pts[j].first;
          const double ddy = pts[i].second - pts[j].second;
          if (ddx * ddx + ddy * ddy <= r2)
            b.add_edge(static_cast<VertexId>(i), j);
        }
  }
  return std::move(b).build();
}

Graph make_watts_strogatz(std::size_t n, std::size_t k, double beta,
                          Rng& rng) {
  BEEPMIS_CHECK(k >= 2 && k % 2 == 0, "WS needs even k >= 2");
  BEEPMIS_CHECK(n > k + 1, "WS needs n > k+1");
  BEEPMIS_CHECK(beta >= 0.0 && beta <= 1.0, "rewiring prob outside [0,1]");
  // Start from the ring lattice, then rewire each lattice edge's far
  // endpoint with probability beta to a uniform non-duplicate target.
  std::set<std::pair<VertexId, VertexId>> edges;
  auto norm = [](VertexId a, VertexId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t j = 1; j <= k / 2; ++j)
      edges.insert(norm(static_cast<VertexId>(v),
                        static_cast<VertexId>((v + j) % n)));
  std::vector<std::pair<VertexId, VertexId>> lattice(edges.begin(),
                                                     edges.end());
  for (auto [u, v] : lattice) {
    if (!rng.bernoulli(beta)) continue;
    // Rewire v's side to a random target; skip on failure to keep counts.
    for (int tries = 0; tries < 32; ++tries) {
      const auto w = static_cast<VertexId>(rng.below(n));
      if (w == u || w == v) continue;
      if (!edges.insert(norm(u, w)).second) continue;
      edges.erase(norm(u, v));
      break;
    }
  }
  GraphBuilder b(n, fmt_name("ws_n%zu_k%zu_b%.2f", n, k, beta));
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return std::move(b).build();
}

Graph make_planted_partition(std::size_t n, std::size_t blocks, double p_in,
                             double p_out, Rng& rng) {
  BEEPMIS_CHECK(blocks >= 1 && n >= blocks, "bad block structure");
  BEEPMIS_CHECK(p_in >= 0 && p_in <= 1 && p_out >= 0 && p_out <= 1,
                "probabilities outside [0,1]");
  GraphBuilder b(n, fmt_name("sbm_n%zu_b%zu", n, blocks));
  const std::size_t per = n / blocks;
  auto block_of = [&](std::size_t v) { return std::min(v / per, blocks - 1); };
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v = u + 1; v < n; ++v) {
      const double p = block_of(u) == block_of(v) ? p_in : p_out;
      if (rng.bernoulli(p))
        b.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    }
  return std::move(b).build();
}

Graph make_random_tree(std::size_t n, Rng& rng) {
  GraphBuilder b(n, fmt_name("rtree_n%zu", n));
  for (std::size_t v = 1; v < n; ++v)
    b.add_edge(static_cast<VertexId>(v),
               static_cast<VertexId>(rng.below(v)));
  return std::move(b).build();
}

// Streaming variants ---------------------------------------------------------

namespace {

/// Runs `edges(emit)` twice through a StreamingCsrBuilder — once counting,
/// once filling. `edges` must produce the identical sequence on both calls
/// (the generators below guarantee it by drawing from a private Rng copy).
template <typename EdgeFn>
Graph stream_two_pass(std::size_t n, std::string name, bool sort_rows,
                      const EdgeFn& edges) {
  StreamingCsrBuilder b(n, std::move(name));
  edges([&b](VertexId u, VertexId v) { b.count_edge(u, v); });
  b.begin_fill();
  edges([&b](VertexId u, VertexId v) { b.fill_edge(u, v); });
  return std::move(b).finish(sort_rows);
}

}  // namespace

Graph make_erdos_renyi_stream(std::size_t n, double p, Rng rng) {
  BEEPMIS_CHECK(p >= 0.0 && p <= 1.0, "edge probability outside [0,1]");
  // Same geometric-skipping walk as make_erdos_renyi, same draw sequence —
  // and Batagelj–Brandes emits (v ascending, w ascending within v), so both
  // endpoints' rows arrive pre-sorted and duplicate-free.
  const auto edges = [n, p, rng](auto&& emit) {
    if (p <= 0.0 || n < 2) return;
    Rng r = rng;
    const double logq = std::log1p(-p);
    std::size_t v = 1, w = static_cast<std::size_t>(-1);
    while (v < n) {
      const double u01 = r.uniform01();
      w += (p < 1.0)
               ? 1 + static_cast<std::size_t>(
                         std::floor(std::log1p(-u01) / logq))
               : 1;
      while (w >= v && v < n) {
        w -= v;
        ++v;
      }
      if (v < n) emit(static_cast<VertexId>(v), static_cast<VertexId>(w));
    }
  };
  return stream_two_pass(n, fmt_name("er_n%zu_p%.4f", n, p),
                         /*sort_rows=*/false, edges);
}

Graph make_erdos_renyi_avg_degree_stream(std::size_t n, double avg_degree,
                                         Rng rng) {
  BEEPMIS_CHECK(n >= 2, "need n >= 2");
  const double p = std::min(1.0, avg_degree / static_cast<double>(n - 1));
  return make_erdos_renyi_stream(n, p, rng);
}

Graph make_barabasi_albert_stream(std::size_t n, std::size_t m, Rng rng) {
  BEEPMIS_CHECK(m >= 1 && n > m, "BA needs n > m >= 1");
  // Same attachment process as make_barabasi_albert. Rows arrive sorted:
  // each new vertex v emits its (distinct, ascending) chosen targets — all
  // smaller than v — and lands in older rows in ascending v order. The
  // target list is the sampling structure, so it exists in both passes;
  // only the GraphBuilder edge list (and its sort) is saved.
  const auto edges = [n, m, rng](auto&& emit) {
    Rng r = rng;
    std::vector<VertexId> targets;
    targets.reserve(2 * m * (n - m));
    for (std::size_t i = 0; i < m; ++i) {
      emit(static_cast<VertexId>(m), static_cast<VertexId>(i));
      targets.push_back(static_cast<VertexId>(i));
      targets.push_back(static_cast<VertexId>(m));
    }
    for (std::size_t v = m + 1; v < n; ++v) {
      std::set<VertexId> chosen;
      while (chosen.size() < m)
        chosen.insert(targets[r.below(targets.size())]);
      for (VertexId u : chosen) {
        emit(static_cast<VertexId>(v), u);
        targets.push_back(u);
        targets.push_back(static_cast<VertexId>(v));
      }
    }
  };
  return stream_two_pass(n, fmt_name("ba_n%zu_m%zu", n, m),
                         /*sort_rows=*/false, edges);
}

Graph make_random_geometric_stream(std::size_t n, double radius, Rng rng) {
  BEEPMIS_CHECK(radius > 0.0, "radius must be positive");
  // Points and the cell grid are drawn once and shared by both passes; only
  // the neighborhood scan repeats. The scan can emit a row's neighbors out
  // of order (cell-window order, not id order), so finish() sorts rows.
  std::vector<std::pair<double, double>> pts(n);
  for (auto& [x, y] : pts) {
    x = rng.uniform01();
    y = rng.uniform01();
  }
  const auto cells = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(1.0 / radius)));
  const double cell = 1.0 / static_cast<double>(cells);
  std::vector<std::vector<VertexId>> grid(cells * cells);
  auto cell_of = [&](double x) {
    auto c = static_cast<std::size_t>(x / cell);
    return std::min(c, cells - 1);
  };
  for (std::size_t i = 0; i < n; ++i)
    grid[cell_of(pts[i].first) * cells + cell_of(pts[i].second)].push_back(
        static_cast<VertexId>(i));
  const double r2 = radius * radius;
  const auto edges = [&](auto&& emit) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t cx = cell_of(pts[i].first);
      const std::size_t cy = cell_of(pts[i].second);
      for (std::size_t dx = (cx == 0 ? 0 : cx - 1);
           dx <= std::min(cx + 1, cells - 1); ++dx)
        for (std::size_t dy = (cy == 0 ? 0 : cy - 1);
             dy <= std::min(cy + 1, cells - 1); ++dy)
          for (VertexId j : grid[dx * cells + dy]) {
            if (j <= i) continue;
            const double ddx = pts[i].first - pts[j].first;
            const double ddy = pts[i].second - pts[j].second;
            if (ddx * ddx + ddy * ddy <= r2)
              emit(static_cast<VertexId>(i), j);
          }
    }
  };
  return stream_two_pass(n, fmt_name("rgg_n%zu_r%.3f", n, radius),
                         /*sort_rows=*/true, edges);
}

}  // namespace beepmis::graph
