/// End-to-end property tests: every algorithm variant, on every experiment
/// family, from adversarial initial states, must stabilize to a
/// verifier-valid MIS; and stabilization must survive transient faults.

#include <gtest/gtest.h>

#include <tuple>

#include "src/beep/fault.hpp"
#include "src/exp/families.hpp"
#include "src/exp/runner.hpp"
#include "src/mis/verifier.hpp"

namespace beepmis::exp {
namespace {

using Param = std::tuple<Variant, Family, core::InitPolicy>;

class VariantFamilyInit : public ::testing::TestWithParam<Param> {};

TEST_P(VariantFamilyInit, StabilizesToValidMis) {
  const auto [variant, family, init] = GetParam();
  support::Rng grng(0x5eed);
  const graph::Graph g = make_family(family, 128, grng);
  const RunResult r = run_variant(g, variant, init, /*seed=*/2024,
                                  default_round_budget(g.vertex_count()));
  ASSERT_TRUE(r.stabilized) << variant_name(variant) << " on "
                            << family_name(family) << " init "
                            << core::init_policy_name(init);
  EXPECT_TRUE(r.valid_mis);
  EXPECT_GT(r.mis_size, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, VariantFamilyInit,
    ::testing::Combine(
        ::testing::Values(Variant::GlobalDelta, Variant::OwnDegree,
                          Variant::TwoChannel),
        ::testing::Values(Family::ErdosRenyiAvg8, Family::Random4Regular,
                          Family::Torus, Family::BarabasiAlbert3,
                          Family::RandomTree, Family::Star),
        ::testing::Values(core::InitPolicy::UniformRandom,
                          core::InitPolicy::AllMin, core::InitPolicy::FakeMis)),
    [](const ::testing::TestParamInfo<Param>& info) {
      auto clean = [](std::string s) {
        for (char& c : s)
          if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        return s;
      };
      return clean(variant_name(std::get<0>(info.param))) + "_" +
             clean(family_name(std::get<1>(info.param))) + "_" +
             clean(core::init_policy_name(std::get<2>(info.param)));
    });

class FaultRecovery : public ::testing::TestWithParam<Variant> {};

TEST_P(FaultRecovery, RecoversFromRepeatedTransientFaults) {
  const Variant variant = GetParam();
  support::Rng grng(7);
  const graph::Graph g = make_family(Family::ErdosRenyiAvg8, 96, grng);
  auto sim = make_selfstab_sim(g, variant, 31);
  support::Rng frng(13);

  RunResult r = run_to_stabilization(*sim, default_round_budget(96));
  ASSERT_TRUE(r.stabilized);

  for (int wave = 0; wave < 5; ++wave) {
    const std::size_t k = 1 + static_cast<std::size_t>(frng.below(48));
    beep::FaultInjector::corrupt_random(*sim, k, frng);
    r = run_to_stabilization(*sim, default_round_budget(96));
    ASSERT_TRUE(r.stabilized) << "wave " << wave << " k=" << k;
    EXPECT_TRUE(r.valid_mis);
  }
}

TEST_P(FaultRecovery, RecoversFromTotalCorruption) {
  const Variant variant = GetParam();
  support::Rng grng(8);
  const graph::Graph g = make_family(Family::Torus, 100, grng);
  auto sim = make_selfstab_sim(g, variant, 32);
  support::Rng frng(14);
  ASSERT_TRUE(run_to_stabilization(*sim, default_round_budget(100)).stabilized);
  beep::FaultInjector::corrupt_all(*sim, frng);
  const RunResult r = run_to_stabilization(*sim, default_round_budget(100));
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(r.valid_mis);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, FaultRecovery,
    ::testing::Values(Variant::GlobalDelta, Variant::OwnDegree,
                      Variant::TwoChannel),
    [](const ::testing::TestParamInfo<Variant>& info) {
      std::string s = variant_name(info.param);
      for (char& c : s)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return s;
    });

TEST(Integration, SurvivesSustainedFaultBarrage) {
  // A periodic adversary corrupts nodes every few rounds for a long window;
  // once it stops, the system must stabilize as if nothing happened (the
  // barrage only ever produces more arbitrary states). Also checks the
  // availability story: DURING the barrage with period >> stabilization
  // time, the system is valid most of the time.
  support::Rng grng(17);
  const graph::Graph g = make_family(Family::Torus, 144, grng);
  auto sim = make_selfstab_sim(g, Variant::GlobalDelta, 41);
  support::Rng frng(19);

  // Dense barrage: 4 corruptions every 3 rounds, for 600 rounds.
  for (int t = 0; t < 600; ++t) {
    if (t % 3 == 0) beep::FaultInjector::corrupt_random(*sim, 4, frng);
    sim->step();
  }
  const RunResult r = run_to_stabilization(*sim, default_round_budget(144));
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(r.valid_mis);

  // Sparse barrage: 1 corruption every 200 rounds; measure availability.
  std::size_t valid_rounds = 0;
  const int window = 2000;
  for (int t = 0; t < window; ++t) {
    if (t % 200 == 0) beep::FaultInjector::corrupt_random(*sim, 1, frng);
    sim->step();
    valid_rounds += mis::is_mis(g, selfstab_mis_members(*sim));
  }
  EXPECT_GT(valid_rounds, window * 3 / 4);
}

TEST(Integration, DisconnectedGraphStabilizesComponentwise) {
  // Two disjoint cliques plus isolated vertices: each component resolves
  // independently; isolated vertices all join the MIS.
  graph::GraphBuilder b(14);
  for (graph::VertexId i = 0; i < 5; ++i)
    for (graph::VertexId j = i + 1; j < 5; ++j) b.add_edge(i, j);
  for (graph::VertexId i = 5; i < 10; ++i)
    for (graph::VertexId j = i + 1; j < 10; ++j) b.add_edge(i, j);
  const graph::Graph g = std::move(b).build();  // vertices 10..13 isolated

  const RunResult r =
      run_variant(g, Variant::GlobalDelta, core::InitPolicy::UniformRandom,
                  /*seed=*/5, 20000);
  ASSERT_TRUE(r.stabilized);
  EXPECT_TRUE(r.valid_mis);
  EXPECT_EQ(r.mis_size, 2u + 4u);  // one per clique + all isolated
}

TEST(Integration, MisSizeComparableToGreedy) {
  // Sanity: the beeping MIS should land in the same ballpark as greedy on a
  // sparse random graph (both are maximal independent sets).
  support::Rng grng(21);
  const graph::Graph g = make_family(Family::ErdosRenyiAvg8, 256, grng);
  const RunResult r =
      run_variant(g, Variant::GlobalDelta, core::InitPolicy::Default,
                  /*seed=*/6, 20000);
  ASSERT_TRUE(r.stabilized);
  support::Rng mrng(4);
  const auto greedy = mis::random_greedy_mis(g, mrng);
  const double ratio = static_cast<double>(r.mis_size) /
                       static_cast<double>(mis::member_count(greedy));
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

}  // namespace
}  // namespace beepmis::exp
